//! The unified frequency-control plane: every way of driving the two
//! frequency knobs of a simulated package — the firmware-like
//! [`DefaultGovernor`], the paper's [`CuttlefishDriver`], a fixed
//! [`Pinned`] operating point, the [`Ondemand`] utilization baseline,
//! the static [`Oracle`] table, or the [`PidUncore`] feedback tracker —
//! behind one object-safe trait.
//!
//! Before this module existed, every consumer (the evaluation harness,
//! the cluster simulator, each example) carried its own
//! `DefaultGovernor`-vs-`CuttlefishDriver` dispatch; adding a
//! controller meant editing all of them. Now consumers hold a
//! `Box<dyn FrequencyController>` built by [`NodePolicy::build`], and a
//! new governor is one `impl` plus one factory arm.
//!
//! # The `FrequencyController` contract
//!
//! Every implementation must honour the same call protocol, because
//! the engine's virtual-clock layer (PR 3) is allowed to *skip* calls
//! and the observable outcome must not change:
//!
//! 1. **Construction** happens through [`NodePolicy::build`], which
//!    may apply an initial actuation (e.g. [`Pinned`] sets its
//!    operating point before the first quantum; [`Oracle`] leaves the
//!    machine at its boot frequencies until the first profile tick).
//! 2. **Per quantum**, the engine calls [`SimProcessor::step`] and
//!    then [`FrequencyController::on_quantum`] — always in that order,
//!    exactly once each. `on_quantum` observes the quantum that just
//!    ran ([`SimProcessor::last_quantum`], counter MSRs) and sets the
//!    frequencies the *next* quantum will run at.
//! 3. **Idle fast-forward.** When every core is parked and the
//!    workload declares a wake-free stretch, the engine may replace
//!    `k` step/`on_quantum` pairs with one
//!    [`SimProcessor::advance_idle_quanta`]`(k)` plus one
//!    [`note_idle_quanta`]`(k)` — but only for
//!    `k ≤` [`idle_quanta_capacity`]. The pair of methods forms a
//!    contract: `idle_quanta_capacity` must return how many
//!    consecutive idle quanta `on_quantum` would neither touch the
//!    machine nor mutate any state beyond what `note_idle_quanta`
//!    replays, and `note_idle_quanta` must replay that bookkeeping
//!    **bit-identically** (floating-point state included — see
//!    [`DefaultGovernor::skip_idle_quanta`] replaying its EWMA decay).
//!    Returning 0 (the default) always degrades to real stepping and
//!    is always correct; capacities are a pure optimization that must
//!    be observationally invisible. Tick-scheduled controllers
//!    ([`CuttlefishDriver`], [`Oracle`]) bound the capacity by their
//!    next scheduled tick (`next_tick_ns`), so ticks always execute
//!    for real; fixed-point controllers ([`Pinned`], [`Ondemand`],
//!    [`PidUncore`]) report unbounded capacity only from an
//!    *absorbing* idle state where every skipped call would have been
//!    idempotent.
//! 4. **Busy fast-forward.** The busy twin of point 3: while cores are
//!    executing, the engine may replace `k` step/`on_quantum` pairs
//!    with one [`SimProcessor::advance_busy_quanta`]`(k)` plus one
//!    [`note_busy_quanta`]`(k)` — but only for
//!    `k ≤` [`busy_quanta_capacity`]. Unlike the idle advance, the
//!    busy advance replays the full per-quantum machine arithmetic
//!    (chunk progress, workload pulls, RAPL, telemetry) bit-for-bit;
//!    the *only* thing skipped is the controller. So the capacity
//!    question is purely "for how many quanta is my `on_quantum` a
//!    provable no-op (beyond what `note_busy_quanta` replays)?".
//!    The engine passes a conservative `horizon_quanta` — quanta
//!    provably free of workload interactions, within which telemetry
//!    can only drift at FP-ULP scale — and telemetry-driven
//!    controllers ([`DefaultGovernor`], [`Ondemand`]) must cap their
//!    answer by it, granting it only from a drift-immune fixed point.
//!    Schedule- or state-proven controllers may exceed the horizon:
//!    [`Pinned`] is unbounded once its pin is applied, and
//!    [`CuttlefishDriver`]/[`Oracle`] are bounded by `next_tick_ns`
//!    alone, because between ticks their `on_quantum` is a pure clock
//!    comparison. **[`PidUncore`] returns 0 by design**: a per-quantum
//!    PID folds a fresh error into its integral and derivative state
//!    every quantum while traffic is nonzero, so it has no busy fixed
//!    point to certify and legitimately cannot fast-forward while
//!    busy — it always steps for real.
//! 5. **Shutdown**: [`stop`](FrequencyController::stop) restores any
//!    platform state captured at attach time (the library's
//!    `cuttlefish::stop()`); controllers that captured nothing do
//!    nothing.
//!
//! The equivalence suites (`tests/controller_equivalence.rs`,
//! `crates/simproc/tests/event_clock.rs`) enforce the bit-exactness
//! half of this contract for every shipped controller.
//!
//! In cluster runs these capacity answers have a second consumer: the
//! discrete-event scheduler (`cluster::sched`) derives each node's
//! next event timestamp from the engine's runway query, which is
//! bounded by the node controller's capacity. A controller's answers
//! therefore *are* its tick stream on the global event heap — a
//! tick-scheduled governor surfaces one event per `Tinv`, a
//! fixed-point governor one per drain/park transition — and the same
//! bit-exactness obligations guarantee the heap may slice a node's
//! timeline at any other node's event boundary without changing a
//! single number.
//!
//! [`note_idle_quanta`]: FrequencyController::note_idle_quanta
//! [`idle_quanta_capacity`]: FrequencyController::idle_quanta_capacity
//! [`note_busy_quanta`]: FrequencyController::note_busy_quanta
//! [`busy_quanta_capacity`]: FrequencyController::busy_quanta_capacity

use crate::daemon::NodeReport;
use crate::driver::CuttlefishDriver;
use crate::tipi::TipiSlab;
use crate::{Config, Policy};
use serde::{Deserialize, Serialize};
use simproc::freq::{Freq, MachineSpec};
use simproc::governor::DefaultGovernor;
use simproc::perf::{PerfModel, LINE_BYTES};
use simproc::power::PowerModel;
use simproc::profile::{delta, CounterSnapshot};
use simproc::SimProcessor;
use std::collections::BTreeMap;

/// A frequency controller driving one simulated package.
///
/// The engine advances in fixed quanta; after every
/// [`SimProcessor::step`] the controller gets [`on_quantum`] to observe
/// counters and set the core/uncore frequencies for the next quantum.
///
/// [`on_quantum`]: FrequencyController::on_quantum
pub trait FrequencyController {
    /// Observe the last quantum and apply frequency decisions.
    fn on_quantum(&mut self, proc: &mut SimProcessor);

    /// Per-TIPI-range view of what the controller has learned
    /// (Table 2 shape). Static controllers report one synthetic range
    /// covering the whole run; profiling controllers report the ranges
    /// discovered so far — which may be none (the Cuttlefish daemon's
    /// report is empty until its first post-warm-up sample), so
    /// consumers must not assume a non-empty vector.
    fn report(&self) -> Vec<NodeReport>;

    /// Display name (the paper's setup labels).
    fn name(&self) -> &'static str;

    /// Fractions of reported ranges with resolved core / uncore optima.
    fn resolved_fractions(&self) -> (f64, f64) {
        let report = self.report();
        let n = report.len().max(1) as f64;
        let cf = report.iter().filter(|r| r.cf_opt.is_some()).count() as f64;
        let uf = report.iter().filter(|r| r.uf_opt.is_some()).count() as f64;
        (cf / n, uf / n)
    }

    /// Release the machine: restore any platform state captured when
    /// the controller attached (the library's `cuttlefish::stop()`).
    /// Controllers that captured nothing do nothing.
    fn stop(&mut self, proc: &mut SimProcessor) {
        let _ = proc;
    }

    /// How many consecutive idle quanta, starting at `proc`'s current
    /// virtual time, this controller can be fast-forwarded across: its
    /// `on_quantum` over that stretch would neither touch the machine
    /// nor change any state beyond what
    /// [`note_idle_quanta`](Self::note_idle_quanta) replays. The engine
    /// advances `min(capacity, idle stretch)` quanta analytically and
    /// calls `note_idle_quanta` once instead of `on_quantum` per
    /// quantum; a capacity of 0 forces a real per-quantum step (the
    /// conservative default, which reproduces pre-virtual-clock
    /// behaviour exactly for controllers that don't opt in).
    fn idle_quanta_capacity(&self, proc: &SimProcessor) -> u64 {
        let _ = proc;
        0
    }

    /// Account a stretch of `quanta` idle quanta the engine
    /// fast-forwarded past this controller. Only ever called with
    /// `quanta <= idle_quanta_capacity()`; implementations replay
    /// whatever per-quantum bookkeeping their `on_quantum` would have
    /// done (bit-identically), and nothing else.
    fn note_idle_quanta(&mut self, quanta: u64) {
        let _ = quanta;
    }

    /// How many consecutive *busy* quanta, starting at `proc`'s
    /// current virtual time, this controller can be fast-forwarded
    /// across: its `on_quantum` over that stretch would neither touch
    /// the machine nor change any state beyond what
    /// [`note_busy_quanta`](Self::note_busy_quanta) replays.
    ///
    /// `horizon_quanta` is the engine's conservative bound on quanta
    /// provably free of workload interactions — no chunk completion,
    /// chunk pull, or phase change (see
    /// `SimProcessor::busy_runway_quanta`) — within which per-quantum
    /// telemetry can only drift at floating-point ULP scale.
    /// Controllers whose no-op proof rests on telemetry staying inside
    /// a band (fixed-point governors like [`DefaultGovernor`] and
    /// [`Ondemand`]) must return at most `horizon_quanta`; controllers
    /// whose proof is schedule- or state-based ([`Pinned`] forever,
    /// [`CuttlefishDriver`]/[`Oracle`] up to the next tick) may exceed
    /// it, because [`SimProcessor::advance_busy_quanta`] replays
    /// workload interactions exactly and only the controller is
    /// skipped.
    ///
    /// A capacity of 0 (the default) always degrades to real stepping
    /// and is always correct. [`PidUncore`] returns 0 *by design*: a
    /// per-quantum PID has no busy fixed point — while traffic is
    /// nonzero it folds a fresh error into its integral and derivative
    /// state every quantum and may move the uncore on any of them — so
    /// it legitimately cannot fast-forward while busy.
    fn busy_quanta_capacity(&self, proc: &SimProcessor, horizon_quanta: u64) -> u64 {
        let _ = (proc, horizon_quanta);
        0
    }

    /// Account a stretch of `quanta` busy quanta the engine
    /// fast-forwarded past this controller. Only ever called with
    /// `quanta <=` the preceding
    /// [`busy_quanta_capacity`](Self::busy_quanta_capacity) answer,
    /// immediately after the corresponding
    /// [`SimProcessor::advance_busy_quanta`] returned `quanta`, so
    /// [`SimProcessor::busy_advance_stats`] exposes the per-quantum
    /// telemetry of exactly this stretch; implementations replay
    /// whatever per-quantum bookkeeping their `on_quantum` would have
    /// done (bit-identically — see
    /// [`DefaultGovernor::skip_busy_quanta`] folding its traffic EWMA
    /// over those stats), and nothing else.
    fn note_busy_quanta(&mut self, quanta: u64, proc: &SimProcessor) {
        let _ = (quanta, proc);
    }
}

/// Run `wl` to completion under `ctrl`, fast-forwarding every stretch
/// the workload ([`simproc::engine::Workload::next_wake_ns`], chunk
/// completion times) and the controller
/// ([`idle_quanta_capacity`](FrequencyController::idle_quanta_capacity),
/// [`busy_quanta_capacity`](FrequencyController::busy_quanta_capacity))
/// jointly declare uneventful — parked stretches through
/// `SimProcessor::advance_idle_quanta`, busy steady-state stretches
/// through `SimProcessor::advance_busy_quanta`. Numerically identical
/// to the plain step-then-`on_quantum` loop — both fast paths perform
/// the same arithmetic — and degrades to exactly that loop when either
/// party declines. Returns the virtual seconds elapsed.
pub fn drive(
    proc: &mut SimProcessor,
    wl: &mut dyn simproc::engine::Workload,
    ctrl: &mut dyn FrequencyController,
) -> f64 {
    let start = proc.now_ns();
    drive_quanta(proc, wl, ctrl, u64::MAX);
    (proc.now_ns() - start) as f64 * 1e-9
}

/// Advance up to `budget` quanta of the event-driven loop [`drive`]
/// runs, stopping early when the workload drains. Returns the quanta
/// actually elapsed (stepped + fast-forwarded). This is the building
/// block for callers that must pause on a wall-clock-independent
/// schedule — trace capture points, duration caps, BSP supersteps —
/// without giving up the fast paths in between.
pub fn drive_quanta(
    proc: &mut SimProcessor,
    wl: &mut dyn simproc::engine::Workload,
    ctrl: &mut dyn FrequencyController,
    budget: u64,
) -> u64 {
    let quantum = proc.spec().quantum_ns;
    let mut left = budget;
    while left > 0 && !proc.workload_drained(wl) {
        if proc.cores_parked() {
            // How far the workload lets the clock jump; `None` (never
            // wakes again) cannot occur for an undrained workload that
            // terminates, so treat it as one quantum and keep polling.
            let runway = match proc.next_event_ns(wl) {
                Some(event) => (event - proc.now_ns()) / quantum,
                None => 1,
            };
            if runway > 1 {
                let k = (runway - 1).min(ctrl.idle_quanta_capacity(proc)).min(left);
                if k > 0 {
                    proc.advance_idle_quanta(k);
                    ctrl.note_idle_quanta(k);
                    left -= k;
                    continue;
                }
            }
        } else {
            // Busy: the engine's event bound is the provably
            // interaction-free runway; one quantum before it is the
            // horizon telemetry-driven capacities must respect.
            // Schedule-proven controllers (Pinned, tick-bounded) may
            // answer beyond it — the busy advance replays workload
            // interactions exactly — so the capacity is *not* clamped
            // to the horizon here, only to the budget.
            let horizon = match proc.next_event_ns(wl) {
                Some(event) => ((event - proc.now_ns()) / quantum).saturating_sub(1),
                None => 0,
            };
            let k = ctrl.busy_quanta_capacity(proc, horizon).min(left);
            if k > 0 {
                let done = proc.advance_busy_quanta(wl, k);
                if done > 0 {
                    ctrl.note_busy_quanta(done, proc);
                    left -= done;
                    continue;
                }
            }
        }
        proc.step(wl);
        ctrl.on_quantum(proc);
        left -= 1;
    }
    budget - left
}

/// One synthetic whole-run range for controllers that do not profile
/// TIPI (label conveys the policy; optima are what the controller has
/// pinned, if anything). `share` is 1.0 — the policy genuinely covers
/// the entire run — so the entry reads as "frequent"; `occurrences`
/// carries the quanta actually observed (zero for controllers that
/// keep no count), letting consumers distinguish a synthetic range
/// from daemon-sampled ones.
fn static_report(
    label: &str,
    cf_opt: Option<Freq>,
    uf_opt: Option<Freq>,
    occurrences: u64,
) -> Vec<NodeReport> {
    vec![NodeReport {
        slab: TipiSlab(0),
        label: label.to_string(),
        cf_opt,
        uf_opt,
        occurrences,
        share: 1.0,
    }]
}

impl FrequencyController for DefaultGovernor {
    fn on_quantum(&mut self, proc: &mut SimProcessor) {
        DefaultGovernor::on_quantum(self, proc);
    }

    fn report(&self) -> Vec<NodeReport> {
        // The firmware resolves no per-MAP optima; it tracks traffic.
        static_report("firmware-auto", None, None, 0)
    }

    fn name(&self) -> &'static str {
        "Default"
    }

    fn idle_quanta_capacity(&self, proc: &SimProcessor) -> u64 {
        // Until the traffic EWMA decays below the ramp and the uncore
        // lands on its idle floor, the firmware moves the knobs every
        // quantum and must be stepped for real; from the fixed point
        // onward only the EWMA decays, which note_idle_quanta replays.
        if self.is_idle_stable(proc) {
            u64::MAX
        } else {
            0
        }
    }

    fn note_idle_quanta(&mut self, quanta: u64) {
        self.skip_idle_quanta(quanta);
    }

    fn busy_quanta_capacity(&self, proc: &SimProcessor, horizon_quanta: u64) -> u64 {
        // Telemetry-driven: only from a saturated fixed point of the
        // traffic ramp (both EWMA and instantaneous signal clear of the
        // band edges, knobs already at the targets, overload settled),
        // and only within the engine's interaction-free horizon where
        // telemetry drift is bounded to ULP scale.
        if self.is_busy_stable(proc) {
            horizon_quanta
        } else {
            0
        }
    }

    fn note_busy_quanta(&mut self, quanta: u64, proc: &SimProcessor) {
        debug_assert_eq!(proc.busy_advance_stats().len() as u64, quanta);
        self.skip_busy_quanta(proc);
    }
}

impl FrequencyController for CuttlefishDriver {
    fn on_quantum(&mut self, proc: &mut SimProcessor) {
        CuttlefishDriver::on_quantum(self, proc);
    }

    fn report(&self) -> Vec<NodeReport> {
        self.daemon().report()
    }

    fn name(&self) -> &'static str {
        self.daemon().config().policy.name()
    }

    fn resolved_fractions(&self) -> (f64, f64) {
        self.daemon().resolved_fractions()
    }

    fn stop(&mut self, proc: &mut SimProcessor) {
        CuttlefishDriver::stop(self, proc);
    }

    fn idle_quanta_capacity(&self, proc: &SimProcessor) -> u64 {
        // Everything up to the next scheduled Tinv tick is a pure clock
        // comparison; the tick itself (a counter snapshot that feeds the
        // next interval's delta) must run for real.
        CuttlefishDriver::idle_quanta_capacity(self, proc)
    }
    // note_idle_quanta: nothing to replay — the driver's schedule is
    // anchored to the engine's virtual clock, not to call counts.

    fn busy_quanta_capacity(&self, proc: &SimProcessor, _horizon_quanta: u64) -> u64 {
        // Same bound as idle: between ticks `on_quantum` is a pure
        // clock comparison, independent of what executes, and the busy
        // advance replays workload interactions exactly — so the
        // engine's telemetry horizon is irrelevant and the tick
        // schedule alone bounds the stretch.
        CuttlefishDriver::busy_quanta_capacity(self, proc)
    }
    // note_busy_quanta: nothing to replay either, for the same reason.
}

/// A controller that pins both domains at a fixed operating point —
/// the §3.2 motivating sweeps (Figure 3) and any oracle/static-tuning
/// baseline.
#[derive(Debug, Clone)]
pub struct Pinned {
    cf: Freq,
    uf: Freq,
    quanta: u64,
}

impl Pinned {
    /// Pin core at `cf` and uncore at `uf`.
    pub fn new(cf: Freq, uf: Freq) -> Self {
        Pinned { cf, uf, quanta: 0 }
    }

    /// The pinned core frequency.
    pub fn core(&self) -> Freq {
        self.cf
    }

    /// The pinned uncore frequency.
    pub fn uncore(&self) -> Freq {
        self.uf
    }
}

impl FrequencyController for Pinned {
    fn on_quantum(&mut self, proc: &mut SimProcessor) {
        // Re-assert every quantum: the pin must hold even if something
        // else (a sysadmin model, a test) moved the knobs.
        proc.set_core_freq(self.cf);
        proc.set_uncore_freq(self.uf);
        self.quanta += 1;
    }

    fn report(&self) -> Vec<NodeReport> {
        static_report("pinned", Some(self.cf), Some(self.uf), self.quanta)
    }

    fn name(&self) -> &'static str {
        "Pinned"
    }

    fn idle_quanta_capacity(&self, proc: &SimProcessor) -> u64 {
        // Re-asserting an already-applied pin is a no-op; only the
        // quanta counter (report occurrences) needs replaying.
        if proc.core_freq() == proc.spec().core.clamp(self.cf)
            && proc.uncore_freq() == proc.spec().uncore.clamp(self.uf)
        {
            u64::MAX
        } else {
            0
        }
    }

    fn note_idle_quanta(&mut self, quanta: u64) {
        self.quanta += quanta;
    }

    fn busy_quanta_capacity(&self, proc: &SimProcessor, _horizon_quanta: u64) -> u64 {
        // Same proof as idle, and it holds regardless of what executes:
        // re-asserting an already-applied pin is a no-op whatever the
        // telemetry says, so the engine's horizon does not bound us.
        self.idle_quanta_capacity(proc)
    }

    fn note_busy_quanta(&mut self, quanta: u64, _proc: &SimProcessor) {
        self.quanta += quanta;
    }
}

/// An ondemand/schedutil-style software governor — the classic
/// utilization-proportional baseline the kernel ships, here as proof
/// that the policy axis is open: one `impl` plus one [`NodePolicy`]
/// arm, and every consumer (harness grid, cluster, scenario JSON,
/// examples) can run it.
///
/// Each quantum it reads the engine's utilization telemetry and steers
/// each domain toward `margin ×` the proportional target — core
/// frequency follows mean pipeline utilization (schedutil's
/// `1.25 · f_max · util`), uncore frequency follows the achieved
/// memory-traffic fraction — moving at most [`max_step`](Self) ratio
/// steps per quantum (the kernel's rate limit, and what keeps the
/// decision sequence deterministic and oscillation-bounded).
#[derive(Debug, Clone)]
pub struct Ondemand {
    /// Headroom multiplier over the proportional target (schedutil's
    /// 1.25).
    pub margin: f64,
    /// Ratio steps each domain may move per quantum.
    pub max_step: u32,
    quanta: u64,
}

impl Default for Ondemand {
    fn default() -> Self {
        Ondemand {
            margin: 1.25,
            max_step: 2,
            quanta: 0,
        }
    }
}

impl Ondemand {
    /// Governor with the schedutil-like defaults.
    pub fn new() -> Self {
        Self::default()
    }

    fn step_toward(cur: Freq, target: Freq, max_step: u32) -> Freq {
        if target.0 > cur.0 {
            Freq(cur.0 + (target.0 - cur.0).min(max_step))
        } else {
            Freq(cur.0 - (cur.0 - target.0).min(max_step))
        }
    }

    /// The `(core, uncore)` operating point this governor asks for at
    /// the given utilization signals (before the per-quantum rate
    /// limit).
    pub fn targets(&self, proc: &SimProcessor, util: f64, traffic: f64) -> (Freq, Freq) {
        let spec = proc.spec();
        let want = |max: Freq, signal: f64| {
            Freq((self.margin * signal.clamp(0.0, 1.0) * f64::from(max.0)).ceil() as u32)
        };
        (
            spec.core.clamp(want(spec.core.max(), util)),
            spec.uncore.clamp(want(spec.uncore.max(), traffic)),
        )
    }

    fn is_idle_stable(&self, proc: &SimProcessor) -> bool {
        let stats = proc.last_quantum();
        let (cf, uf) = self.targets(proc, 0.0, 0.0);
        stats.instructions == 0.0
            && stats.achieved_bw == 0.0
            && proc.core_freq() == cf
            && proc.uncore_freq() == uf
    }

    /// Whether the `.ceil()` inside [`targets`](Self::targets) is
    /// immune to the ULP-scale signal drift of a busy fast-forwarded
    /// stretch: the raw proportional value must sit clearly between
    /// two integers, so a last-bit wobble of the signal cannot move
    /// the quantized target. A signal of exactly 0 is drift-free
    /// (telemetry sums of exact zeros stay exact zeros); clamping
    /// boundaries need no special case because the clamped value feeds
    /// the same interior check.
    fn ceil_stable(margin: f64, signal: f64, max: Freq) -> bool {
        const EPS: f64 = 1e-6;
        let s = signal.clamp(0.0, 1.0);
        if s == 0.0 {
            return true;
        }
        let f = (margin * s * f64::from(max.0)).fract();
        f > EPS && f < 1.0 - EPS
    }

    /// True at the governor's *busy* fixed point: both domains already
    /// sit on their (rate-limit-free) targets for the last quantum's
    /// telemetry, each target is [`ceil_stable`](Self::ceil_stable)
    /// against ULP drift, and the engine's overload relaxation has
    /// settled — so every further `on_quantum` inside an
    /// interaction-free stretch re-writes the same frequencies.
    fn is_busy_stable(&self, proc: &SimProcessor) -> bool {
        if !proc.overload_settled() {
            return false;
        }
        let stats = proc.last_quantum();
        let traffic = stats.achieved_bw / proc.perf_model().dram_peak_bw;
        let (cf_t, uf_t) = self.targets(proc, stats.mean_util, traffic);
        proc.core_freq() == cf_t
            && proc.uncore_freq() == uf_t
            && Self::ceil_stable(self.margin, stats.mean_util, proc.spec().core.max())
            && Self::ceil_stable(self.margin, traffic, proc.spec().uncore.max())
    }
}

impl FrequencyController for Ondemand {
    fn on_quantum(&mut self, proc: &mut SimProcessor) {
        let stats = proc.last_quantum();
        let traffic = stats.achieved_bw / proc.perf_model().dram_peak_bw;
        let (cf_t, uf_t) = self.targets(proc, stats.mean_util, traffic);
        let cf = Self::step_toward(proc.core_freq(), cf_t, self.max_step);
        let uf = Self::step_toward(proc.uncore_freq(), uf_t, self.max_step);
        proc.set_core_freq(cf);
        proc.set_uncore_freq(uf);
        self.quanta += 1;
    }

    fn report(&self) -> Vec<NodeReport> {
        // Utilization-driven, not MAP-driven: no per-range optima.
        static_report("ondemand", None, None, self.quanta)
    }

    fn name(&self) -> &'static str {
        "Ondemand"
    }

    fn idle_quanta_capacity(&self, proc: &SimProcessor) -> u64 {
        // At the idle fixed point (zero signals, both domains already at
        // the idle targets) every further on_quantum re-writes the same
        // frequencies — idempotent — and only counts the quantum.
        if self.is_idle_stable(proc) {
            u64::MAX
        } else {
            0
        }
    }

    fn note_idle_quanta(&mut self, quanta: u64) {
        self.quanta += quanta;
    }

    fn busy_quanta_capacity(&self, proc: &SimProcessor, horizon_quanta: u64) -> u64 {
        // Telemetry-driven: only from the step-limited fixed point
        // (targets already reached and ceil-stable against drift), and
        // only within the engine's interaction-free horizon.
        if self.is_busy_stable(proc) {
            horizon_quanta
        } else {
            0
        }
    }

    fn note_busy_quanta(&mut self, quanta: u64, _proc: &SimProcessor) {
        self.quanta += quanta;
    }
}

/// One row of an [`OracleTable`]: the statically-known optimal
/// operating point for one TIPI range (one Table 2 row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OracleEntry {
    /// The TIPI range this point applies to.
    pub slab: TipiSlab,
    /// Core frequency to set, deci-GHz.
    pub cf: Freq,
    /// Uncore frequency to set, deci-GHz.
    pub uf: Freq,
}

/// A static per-phase operating-point table — the paper's §5 oracle
/// baseline, replaying Table 2's per-benchmark core+uncore optima.
///
/// Entries are keyed by quantized TIPI range (the paper's memory
/// access pattern identity), kept in strictly ascending slab order;
/// [`OracleTable::nearest`] resolves phases the table has no exact row
/// for to the closest known one. Tables are built either explicitly
/// (hand-written from Table 2) or by [`OracleTable::from_trace`],
/// which derives one from a traced `Default` run the way the paper
/// builds its oracle from profiled executions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OracleTable {
    /// TIPI slab width the entries are quantized with (§3.2).
    pub slab_width: f64,
    /// Profile interval of the replaying controller, nanoseconds.
    pub tinv_ns: u64,
    /// Per-range optima, strictly ascending by slab.
    pub entries: Vec<OracleEntry>,
}

/// Parameters of [`OracleTable::from_trace`].
#[derive(Debug, Clone, PartialEq)]
pub struct OracleDerivation {
    /// TIPI slab width for the derived table.
    pub slab_width: f64,
    /// Profile interval for the derived table, nanoseconds.
    pub tinv_ns: u64,
    /// Minimum share of trace samples a slab needs to earn an entry
    /// (the paper's "frequently occurring" threshold is 0.10).
    pub min_share: f64,
    /// Optional TIPI window (e.g. the benchmark's Table 1 range):
    /// samples more than one slab outside it are treated as noise
    /// (warm-up transients, idle tails) and dropped.
    pub tipi_range: Option<(f64, f64)>,
}

impl Default for OracleDerivation {
    fn default() -> Self {
        OracleDerivation {
            slab_width: 0.004,
            tinv_ns: 20_000_000,
            min_share: 0.10,
            tipi_range: None,
        }
    }
}

/// One `Tinv`-rate observation of a traced run, as consumed by
/// [`OracleTable::from_trace`]: the interval's TIPI/JPI plus the
/// operating point and package power it was measured at.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSample {
    /// TOR inserts per instruction over the interval.
    pub tipi: f64,
    /// Joules per instruction over the interval.
    pub jpi: f64,
    /// Package power over the interval, watts.
    pub watts: f64,
    /// Core frequency the interval ran at.
    pub cf: Freq,
    /// Uncore frequency the interval ran at.
    pub uf: Freq,
}

impl OracleTable {
    /// Check the invariants [`Oracle`] relies on.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.slab_width.is_finite() && self.slab_width > 0.0) {
            return Err(format!("invalid oracle slab width {}", self.slab_width));
        }
        if self.tinv_ns == 0 {
            return Err("oracle tinv_ns must be at least one nanosecond".into());
        }
        if self.entries.is_empty() {
            return Err("oracle table needs at least one entry".into());
        }
        for pair in self.entries.windows(2) {
            if pair[0].slab >= pair[1].slab {
                return Err(format!(
                    "oracle entries must be strictly ascending by slab ({} then {})",
                    pair[0].slab, pair[1].slab
                ));
            }
        }
        if let Some(e) = self.entries.iter().find(|e| e.cf.0 == 0 || e.uf.0 == 0) {
            return Err(format!("oracle entry for {} has a zero frequency", e.slab));
        }
        Ok(())
    }

    /// Index of the entry nearest to `slab` (ties resolve to the lower
    /// slab — deterministic).
    ///
    /// # Panics
    /// Panics on an empty table — construction is guarded by
    /// [`validate`](Self::validate).
    pub fn nearest(&self, slab: TipiSlab) -> usize {
        assert!(!self.entries.is_empty(), "oracle table must not be empty");
        let mut best = 0;
        let mut best_gap = u32::MAX;
        for (i, e) in self.entries.iter().enumerate() {
            let gap = e.slab.0.abs_diff(slab.0);
            if gap < best_gap {
                best = i;
                best_gap = gap;
            }
        }
        best
    }

    /// Derive an oracle table from a traced `Default` run, mirroring
    /// how the paper builds its oracle from profiled executions.
    ///
    /// For every frequent TIPI slab the trace visits, the phase is
    /// *identified* from its samples — the package-power model is
    /// inverted for the mean core utilization, which splits the
    /// observed seconds-per-instruction into a pipeline component
    /// (scaling as `1/CF`) and an exposed-stall component (scaling
    /// with the uncore miss latency) — and the identified phase is
    /// then swept analytically over every `(CF, UF)` operating point
    /// of `spec` under the machine's perf/power models (latency bound,
    /// bandwidth roofline, package power). The JPI-argmin point
    /// becomes the slab's entry — the settling points of Table 2, but
    /// computed from one profiled run instead of an exhaustive sweep.
    ///
    /// Returns an error when no slab clears `params.min_share` with at
    /// least one identifiable sample.
    pub fn from_trace(
        samples: &[TraceSample],
        spec: &MachineSpec,
        perf: &PerfModel,
        power: &PowerModel,
        params: &OracleDerivation,
    ) -> Result<OracleTable, String> {
        #[derive(Default)]
        struct Acc {
            seen: u64,
            ok: u64,
            tipi: f64,
            cpi: f64,
            stall1: f64,
            /// Samples contributing to `stall1` (unsaturated only —
            /// see below).
            stall1_n: u64,
        }
        /// Above this achieved/cap fraction a sample counts as
        /// bandwidth-saturated: its observed stall is roofline-driven
        /// (`stall_lat · overload` with the product pinned by the cap),
        /// so the latency component is unidentifiable from it.
        const SATURATED: f64 = 0.95;
        /// Memory-level parallelism assumed for slabs whose every
        /// sample is saturated (mid-range of the Table 1 profiles).
        const FALLBACK_MLP: f64 = 8.0;
        let n = spec.n_cores as f64;
        let mut accs: BTreeMap<u32, Acc> = BTreeMap::new();
        let mut total = 0u64;
        for s in samples {
            if !(s.tipi.is_finite() && s.tipi >= 0.0 && s.jpi > 0.0 && s.watts > 0.0) {
                continue;
            }
            if let Some((lo, hi)) = params.tipi_range {
                if s.tipi < lo - params.slab_width || s.tipi > hi + params.slab_width {
                    continue;
                }
            }
            let slab = TipiSlab::quantize(s.tipi, params.slab_width).0;
            total += 1;
            let acc = accs.entry(slab).or_default();
            acc.seen += 1;
            // Identify the phase behind the sample. Chip instruction
            // rate and achieved traffic follow from JPI and power;
            // inverting the package-power model for the core-dynamic
            // term yields the mean pipeline utilization, which splits
            // the observed seconds/instruction into its pipeline and
            // exposed-stall components.
            let r_inst = s.watts / s.jpi;
            let spi = n / r_inst;
            let traffic = (r_inst * s.tipi * LINE_BYTES / perf.dram_peak_bw).clamp(0.0, 1.0);
            let vc = power.v_core.volts(s.cf);
            let vu = power.v_uncore.volts(s.uf);
            let act = power.act_floor + power.act_slope * traffic;
            let core_watts = s.watts
                - power.p_base
                - power.s_uncore * vu * vu
                - power.k_uncore * vu * vu * s.uf.hz() * act;
            if core_watts <= 0.0 {
                continue;
            }
            let eff = core_watts / (power.k_core * vc * vc * s.cf.hz()) / n;
            let util = ((eff - power.halt_fraction) / (1.0 - power.halt_fraction)).clamp(0.0, 1.0);
            let compute = util * spi;
            let stall = spi - compute;
            let cpi = compute * s.cf.hz();
            if !(cpi.is_finite() && cpi > 0.0 && stall.is_finite() && stall >= 0.0) {
                continue;
            }
            acc.ok += 1;
            acc.tipi += s.tipi;
            acc.cpi += cpi;
            // The latency-stall coefficient is only identifiable when
            // the sample ran below the bandwidth roofline; saturated
            // samples observe `stall_lat · overload`, which any
            // latency value is consistent with.
            let achieved = r_inst * s.tipi * LINE_BYTES;
            if achieved < SATURATED * perf.bandwidth_cap(s.uf) {
                acc.stall1 += stall / perf.t_miss_local(s.uf);
                acc.stall1_n += 1;
            }
        }

        let mut entries = Vec::new();
        for (slab, acc) in &accs {
            if acc.ok == 0 || (acc.seen as f64) < params.min_share * total as f64 {
                continue;
            }
            let k = acc.ok as f64;
            let phase = Phase {
                tipi: acc.tipi / k,
                cpi: acc.cpi / k,
                stall1: if acc.stall1_n > 0 {
                    acc.stall1 / acc.stall1_n as f64
                } else {
                    (acc.tipi / k) / FALLBACK_MLP
                },
            };
            let (cf, uf) = argmin_jpi(spec, perf, power, &phase);
            entries.push(OracleEntry {
                slab: TipiSlab(*slab),
                cf,
                uf,
            });
        }
        let table = OracleTable {
            slab_width: params.slab_width,
            tinv_ns: params.tinv_ns,
            entries,
        };
        table.validate().map_err(|e| {
            format!("trace yields no usable oracle table ({total} samples considered): {e}")
        })?;
        Ok(table)
    }
}

/// An identified phase: mean TIPI, pipeline cycles per instruction,
/// and exposed stall per unit miss latency.
struct Phase {
    tipi: f64,
    cpi: f64,
    stall1: f64,
}

/// Predicted steady-state JPI of an identified phase at operating
/// point `(cf, uf)`: latency-bound time per instruction under the
/// bandwidth roofline, times the package power the machine burns
/// sustaining it.
fn predict_jpi(
    spec: &MachineSpec,
    perf: &PerfModel,
    power: &PowerModel,
    phase: &Phase,
    cf: Freq,
    uf: Freq,
) -> f64 {
    let n = spec.n_cores as f64;
    let t_lat = phase.cpi / cf.hz() + phase.stall1 * perf.t_miss_local(uf);
    let t_bw = if phase.tipi > 0.0 {
        n * phase.tipi * LINE_BYTES / perf.bandwidth_cap(uf)
    } else {
        0.0
    };
    let t = t_lat.max(t_bw);
    let util = (phase.cpi / cf.hz()) / t;
    let eff_sum = n * power.core_effective(util);
    let traffic = ((n * phase.tipi * LINE_BYTES / t) / perf.dram_peak_bw).clamp(0.0, 1.0);
    let watts = power.package_watts(cf, uf, eff_sum, traffic);
    watts * t / n
}

/// The operating point the paper's search settles on for an identified
/// phase, via the same coordinate order Cuttlefish explores in: the
/// core axis first with the uncore at max (Algorithm 2), then the
/// uncore axis at the resolved core optimum (Algorithm 3). This is
/// what Table 2 reports — and it can differ by a ratio step from the
/// joint argmin, exactly as a real sequential search does. Sweeps are
/// ascending with a strict-less comparison, so ties resolve to the
/// lower frequency — deterministic.
fn argmin_jpi(
    spec: &MachineSpec,
    perf: &PerfModel,
    power: &PowerModel,
    phase: &Phase,
) -> (Freq, Freq) {
    let sweep = |freqs: &mut dyn Iterator<Item = (Freq, Freq)>| -> (Freq, Freq) {
        let mut best = (spec.core.max(), spec.uncore.max());
        let mut best_jpi = f64::INFINITY;
        for (cf, uf) in freqs {
            let jpi = predict_jpi(spec, perf, power, phase, cf, uf);
            if jpi < best_jpi {
                best = (cf, uf);
                best_jpi = jpi;
            }
        }
        best
    };
    let (cf_opt, _) = sweep(&mut spec.core.iter().map(|cf| (cf, spec.uncore.max())));
    sweep(&mut spec.uncore.iter().map(|uf| (cf_opt, uf)))
}

/// The static-oracle controller: wakes every `Tinv` like the
/// Cuttlefish daemon, identifies the last interval's TIPI range, and
/// sets the operating point its [`OracleTable`] prescribes — no
/// search, no exploration cost. This is the paper's §5 comparison
/// baseline: Cuttlefish's claim is that its *online* linear descent
/// matches the energy savings of exactly this statically-known table.
///
/// The `Tinv` wake-up is a scheduled event on the engine's virtual
/// clock (epoch-anchored `next_tick_ns`, like [`CuttlefishDriver`]):
/// between ticks `on_quantum` is a pure time comparison, so
/// [`idle_quanta_capacity`](FrequencyController::idle_quanta_capacity)
/// reports the stretch up to (but excluding) the next tick and idle
/// fast-forwarding stays bit-exact.
///
/// ```
/// use cuttlefish::controller::{FrequencyController, NodePolicy, Oracle, OracleEntry, OracleTable};
/// use cuttlefish::TipiSlab;
/// use simproc::engine::{Chunk, Workload};
/// use simproc::freq::{Freq, HASWELL_2650V3};
/// use simproc::perf::CostProfile;
///
/// // A memory-bound stream; the table prescribes the Table 2 point.
/// struct Stream;
/// impl Workload for Stream {
///     fn next_chunk(&mut self, _c: usize, _t: u64) -> Option<Chunk> {
///         Some(Chunk::new(1_000_000, 56_000, 8_000).with_profile(CostProfile::new(0.55, 12.0)))
///     }
///     fn is_done(&self) -> bool { false }
/// }
/// let table = OracleTable {
///     slab_width: 0.004,
///     tinv_ns: 20_000_000,
///     entries: vec![OracleEntry { slab: TipiSlab(16), cf: Freq(12), uf: Freq(22) }],
/// };
/// let mut proc = simproc::SimProcessor::new(HASWELL_2650V3.clone());
/// let mut ctrl = NodePolicy::Oracle(table).build(&mut proc);
/// let mut wl = Stream;
/// for _ in 0..100 {
///     proc.step(&mut wl);
///     ctrl.on_quantum(&mut proc);
/// }
/// // After the first profile tick the oracle point is applied.
/// assert_eq!(proc.core_freq(), Freq(12));
/// assert_eq!(proc.uncore_freq(), Freq(22));
/// ```
#[derive(Debug, Clone)]
pub struct Oracle {
    table: OracleTable,
    quantum_ns: u64,
    /// `Tinv` quantized to whole quanta, in ns (≥ one quantum).
    tinv_step_ns: u64,
    epoch_ns: Option<u64>,
    next_tick_ns: u64,
    last: Option<CounterSnapshot>,
    /// Per-entry tick attributions (parallel to `table.entries`).
    hits: Vec<u64>,
    ticks: u64,
}

impl Oracle {
    /// Controller for `proc` replaying `table`.
    ///
    /// # Panics
    /// Panics on an invalid table ([`OracleTable::validate`]) — file
    /// and scenario paths validate before construction.
    pub fn new(proc: &SimProcessor, table: OracleTable) -> Self {
        table
            .validate()
            .unwrap_or_else(|e| panic!("invalid oracle table: {e}"));
        let quantum_ns = proc.spec().quantum_ns;
        let hits = vec![0; table.entries.len()];
        let tinv_step_ns = (table.tinv_ns / quantum_ns).max(1) * quantum_ns;
        Oracle {
            table,
            quantum_ns,
            tinv_step_ns,
            epoch_ns: None,
            next_tick_ns: 0,
            last: None,
            hits,
            ticks: 0,
        }
    }

    /// [`OracleTable::from_trace`], wrapped into a ready controller.
    pub fn from_trace(
        proc: &SimProcessor,
        samples: &[TraceSample],
        params: &OracleDerivation,
    ) -> Result<Self, String> {
        let table = OracleTable::from_trace(
            samples,
            proc.spec(),
            proc.perf_model(),
            proc.power_model(),
            params,
        )?;
        Ok(Oracle::new(proc, table))
    }

    /// The table being replayed.
    pub fn table(&self) -> &OracleTable {
        &self.table
    }
}

impl FrequencyController for Oracle {
    fn on_quantum(&mut self, proc: &mut SimProcessor) {
        let now_ns = proc.now_ns();
        if self.epoch_ns.is_none() {
            // Anchor the tick schedule one quantum back (the step that
            // just ran), exactly like the Cuttlefish driver; the
            // machine keeps its boot operating point until the first
            // profiled interval identifies the phase.
            let epoch = now_ns.saturating_sub(self.quantum_ns);
            self.epoch_ns = Some(epoch);
            self.next_tick_ns = epoch + self.tinv_step_ns;
            self.last = CounterSnapshot::capture(proc).ok();
            return;
        }
        if now_ns < self.next_tick_ns {
            return;
        }
        while self.next_tick_ns <= now_ns {
            self.next_tick_ns += self.tinv_step_ns;
        }
        let now = match CounterSnapshot::capture(proc) {
            Ok(s) => s,
            Err(_) => return,
        };
        if let Some(prev) = self.last.replace(now) {
            if let Some(sample) = delta(&prev, &now) {
                let slab = TipiSlab::quantize(sample.tipi, self.table.slab_width);
                let idx = self.table.nearest(slab);
                self.hits[idx] += 1;
                self.ticks += 1;
                let entry = self.table.entries[idx];
                proc.set_core_freq(entry.cf);
                proc.set_uncore_freq(entry.uf);
            }
        }
    }

    fn report(&self) -> Vec<NodeReport> {
        let total = self.ticks.max(1) as f64;
        self.table
            .entries
            .iter()
            .zip(&self.hits)
            .map(|(e, &hits)| NodeReport {
                slab: e.slab,
                label: e.slab.label(self.table.slab_width),
                cf_opt: Some(e.cf),
                uf_opt: Some(e.uf),
                occurrences: hits,
                share: hits as f64 / total,
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "Oracle"
    }

    fn idle_quanta_capacity(&self, proc: &SimProcessor) -> u64 {
        // Between ticks on_quantum is a pure clock comparison; the
        // tick itself (a counter snapshot feeding the next interval's
        // delta) must run for real.
        if self.epoch_ns.is_none() {
            return 0;
        }
        let now_ns = proc.now_ns();
        if self.next_tick_ns <= now_ns {
            return 0;
        }
        (self.next_tick_ns - now_ns) / self.quantum_ns - 1
    }
    // note_idle_quanta: nothing to replay — the tick schedule is
    // anchored to the engine's virtual clock, not to call counts.

    fn busy_quanta_capacity(&self, proc: &SimProcessor, _horizon_quanta: u64) -> u64 {
        // Same bound as idle: between ticks on_quantum is a pure clock
        // comparison whatever the machine is doing, and the busy
        // advance replays workload interactions exactly, so the
        // engine's telemetry horizon is irrelevant here.
        self.idle_quanta_capacity(proc)
    }
    // note_busy_quanta: nothing to replay either, for the same reason.
}

/// Gains and setpoint of the [`PidUncore`] feedback loop.
///
/// The controlled variable is the fraction of the uncore's sustainable
/// bandwidth the workload actually achieves
/// (`achieved_bw / (bw_per_uncore_ghz · UF)`, in `0..=1`): driving it
/// to `setpoint` keeps the uncore just fast enough that memory traffic
/// retains `1 − setpoint` headroom, instead of exploring for the JPI
/// minimum like Algorithm 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PidGains {
    /// Proportional gain, ratio steps per unit error.
    pub kp: f64,
    /// Integral gain, ratio steps per unit accumulated error.
    pub ki: f64,
    /// Derivative gain, ratio steps per unit error slope.
    pub kd: f64,
    /// Target bandwidth-utilization fraction, in `(0, 1]`.
    pub setpoint: f64,
}

impl Default for PidGains {
    fn default() -> Self {
        PidGains {
            kp: 8.0,
            ki: 0.4,
            kd: 0.0,
            setpoint: 0.9,
        }
    }
}

impl PidGains {
    /// Check the invariants [`PidUncore`] relies on.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [("kp", self.kp), ("ki", self.ki), ("kd", self.kd)] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("PID gain {name} must be finite and >= 0, got {v}"));
            }
        }
        if !(self.setpoint.is_finite() && self.setpoint > 0.0 && self.setpoint <= 1.0) {
            return Err(format!(
                "PID setpoint must lie in (0, 1], got {}",
                self.setpoint
            ));
        }
        Ok(())
    }
}

/// Anti-windup clamp on the PID integral term, in error·quanta.
const PID_INTEGRAL_CLAMP: f64 = 25.0;

/// A feedback-control alternative to Algorithm 3's uncore exploration
/// window: a per-quantum PID loop drives the uncore so that achieved
/// memory traffic sits at a fixed fraction of the uncore's sustainable
/// bandwidth, while core DVFS is delegated unchanged to the Cuttlefish
/// core search (a [`CuttlefishDriver`] running `Policy::CoreOnly` —
/// its tick-scheduled uncore write is overridden every quantum by the
/// loop, so the PID owns that knob).
///
/// ```
/// use cuttlefish::controller::{FrequencyController, NodePolicy, PidGains};
/// use cuttlefish::Config;
/// use simproc::engine::{Chunk, Workload};
/// use simproc::freq::HASWELL_2650V3;
/// use simproc::perf::CostProfile;
///
/// struct Stream;
/// impl Workload for Stream {
///     fn next_chunk(&mut self, _c: usize, _t: u64) -> Option<Chunk> {
///         Some(Chunk::new(1_000_000, 56_000, 8_000).with_profile(CostProfile::new(0.55, 12.0)))
///     }
///     fn is_done(&self) -> bool { false }
/// }
/// let mut proc = simproc::SimProcessor::new(HASWELL_2650V3.clone());
/// let mut ctrl = NodePolicy::PidUncore {
///     config: Config::default(),
///     gains: PidGains::default(),
/// }
/// .build(&mut proc);
/// let mut wl = Stream;
/// for _ in 0..600 {
///     proc.step(&mut wl);
///     ctrl.on_quantum(&mut proc);
/// }
/// // Saturating traffic settles the uncore near the bandwidth knee,
/// // well below max — without any exploration.
/// assert!(proc.uncore_freq() < HASWELL_2650V3.uncore.max());
/// ```
#[derive(Debug)]
pub struct PidUncore {
    gains: PidGains,
    core: CuttlefishDriver,
    /// Continuous uncore setting, in ratio units (rounded on write).
    level: f64,
    integral: f64,
    last_err: f64,
    quanta: u64,
}

impl PidUncore {
    /// Controller for `proc`: PID on the uncore, Cuttlefish core-only
    /// search (from `config`, its policy forced to `CoreOnly`) on the
    /// cores.
    ///
    /// # Panics
    /// Panics on invalid gains ([`PidGains::validate`]) — file and
    /// scenario paths validate before construction.
    pub fn new(proc: &SimProcessor, config: Config, gains: PidGains) -> Self {
        gains
            .validate()
            .unwrap_or_else(|e| panic!("invalid PID gains: {e}"));
        let core = CuttlefishDriver::new(proc, config.with_policy(Policy::CoreOnly));
        PidUncore {
            gains,
            core,
            level: f64::from(proc.uncore_freq().0),
            integral: 0.0,
            last_err: 0.0,
            quanta: 0,
        }
    }

    /// The gains in effect.
    pub fn gains(&self) -> &PidGains {
        &self.gains
    }

    /// The delegated core-search driver (reports, tests).
    pub fn core_driver(&self) -> &CuttlefishDriver {
        &self.core
    }

    /// The error signal at the current machine state. The controlled
    /// variable is traffic relative to the *uncore-sustainable*
    /// bandwidth (`bw_per_uncore_ghz · UF`), deliberately not the
    /// DRAM-capped roofline: a workload pinned at the DRAM peak can
    /// never fall below a setpoint measured against the capped value,
    /// which would wind the loop up to max instead of settling it just
    /// above the knee with `1 − setpoint` headroom.
    fn error(&self, proc: &SimProcessor) -> f64 {
        let sustainable = proc.perf_model().bw_per_uncore_ghz * proc.uncore_freq().ghz();
        let measured = if sustainable > 0.0 {
            (proc.last_quantum().achieved_bw / sustainable).clamp(0.0, 1.0)
        } else {
            0.0
        };
        measured - self.gains.setpoint
    }

    /// True when, on a fully-parked machine, every further
    /// `on_quantum` would be idempotent: zero signals, the integral
    /// saturated at its anti-windup clamp, the continuous level (and
    /// the machine) pinned at the domain floor, and the derivative
    /// term zero. From this absorbing state only the quanta counter
    /// advances, which `note_idle_quanta` replays.
    fn is_idle_stable(&self, proc: &SimProcessor) -> bool {
        let stats = proc.last_quantum();
        let err = -self.gains.setpoint;
        let floor = f64::from(proc.spec().uncore.min().0);
        stats.instructions == 0.0
            && stats.achieved_bw == 0.0
            && self.integral == -PID_INTEGRAL_CLAMP
            && self.last_err == err
            && self.level == floor
            && proc.uncore_freq() == proc.spec().uncore.min()
    }
}

impl FrequencyController for PidUncore {
    fn on_quantum(&mut self, proc: &mut SimProcessor) {
        // Core search first: on its Tinv ticks the driver writes both
        // knobs (CoreOnly pins the uncore request at max); the PID
        // write below lands after it, so the uncore knob is always the
        // loop's.
        self.core.on_quantum(proc);
        let err = self.error(proc);
        self.integral = (self.integral + err).clamp(-PID_INTEGRAL_CLAMP, PID_INTEGRAL_CLAMP);
        let derivative = err - self.last_err;
        self.last_err = err;
        let u = self.gains.kp * err + self.gains.ki * self.integral + self.gains.kd * derivative;
        let dom = &proc.spec().uncore;
        self.level = (self.level + u).clamp(f64::from(dom.min().0), f64::from(dom.max().0));
        proc.set_uncore_freq(Freq(self.level.round() as u32));
        self.quanta += 1;
    }

    fn report(&self) -> Vec<NodeReport> {
        // The core search's discovered ranges (CF optima); the uncore
        // is feedback-tracked, not per-range resolved.
        self.core.daemon().report()
    }

    fn name(&self) -> &'static str {
        "PidUncore"
    }

    fn resolved_fractions(&self) -> (f64, f64) {
        self.core.daemon().resolved_fractions()
    }

    fn stop(&mut self, proc: &mut SimProcessor) {
        self.core.stop(proc);
    }

    fn idle_quanta_capacity(&self, proc: &SimProcessor) -> u64 {
        // Both halves must consent: the PID from its absorbing idle
        // fixed point, the core driver up to its next scheduled tick.
        if self.is_idle_stable(proc) {
            self.core.idle_quanta_capacity(proc)
        } else {
            0
        }
    }

    fn note_idle_quanta(&mut self, quanta: u64) {
        // The PID state is absorbing at the fixed point (the integral
        // sits exactly on its clamp, the error is constant, the level
        // exactly on the floor); only the quanta count advances. The
        // core driver's schedule is clock-anchored — nothing to replay.
        self.quanta += quanta;
    }

    fn busy_quanta_capacity(&self, _proc: &SimProcessor, _horizon_quanta: u64) -> u64 {
        // 0 by design, not by omission: a per-quantum PID has no busy
        // fixed point. While traffic is nonzero every quantum folds a
        // fresh error into the integral (and derivative) state and the
        // continuous `level` may cross a rounding boundary on any of
        // them — there is nothing a capacity could certify as a no-op,
        // so the loop legitimately cannot fast-forward while busy and
        // always steps for real. (Idle is different: the anti-windup
        // clamp makes the parked state absorbing.)
        0
    }
}

/// Frequency policy for a node — the factory input shared by the
/// evaluation harness, the cluster simulator, and the examples.
///
/// The policy is plain data (`Clone + PartialEq`, serde-ready): the
/// grid runner in `bench::grid` embeds it in per-cell scenario
/// descriptors that cross thread boundaries and round-trip through
/// JSON artifacts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodePolicy {
    /// `performance` governor + firmware Auto uncore.
    Default,
    /// One Cuttlefish instance with this configuration.
    Cuttlefish(Config),
    /// Both domains pinned at a fixed operating point.
    Pinned {
        /// Core frequency to pin.
        cf: Freq,
        /// Uncore frequency to pin.
        uf: Freq,
    },
    /// The ondemand/schedutil-style utilization-proportional governor.
    Ondemand,
    /// The static per-phase operating-point oracle (Table 2 replay).
    Oracle(OracleTable),
    /// PID uncore tracking over a Cuttlefish core-only search.
    PidUncore {
        /// Configuration of the delegated core search (its policy is
        /// forced to `CoreOnly` at build time).
        config: Config,
        /// Gains and setpoint of the uncore loop.
        gains: PidGains,
    },
}

impl NodePolicy {
    /// Display name of the controller this policy builds.
    pub fn name(&self) -> &'static str {
        match self {
            NodePolicy::Default => "Default",
            NodePolicy::Cuttlefish(cfg) => cfg.policy.name(),
            NodePolicy::Pinned { .. } => "Pinned",
            NodePolicy::Ondemand => "Ondemand",
            NodePolicy::Oracle(_) => "Oracle",
            NodePolicy::PidUncore { .. } => "PidUncore",
        }
    }

    /// Check the policy's own parameters (oracle tables, PID gains).
    /// Scenario validation and the JSON decoders report violations as
    /// errors; [`build`](Self::build) panics on them.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            NodePolicy::Oracle(table) => table.validate(),
            NodePolicy::PidUncore { gains, .. } => gains.validate(),
            _ => Ok(()),
        }
    }

    /// Build the controller for `proc`.
    ///
    /// Takes the processor mutably so controllers that need an initial
    /// actuation can apply it before the first quantum runs: `Pinned`
    /// sets its operating point here (the Figure 3 sweeps measure from
    /// the very first quantum), while `Cuttlefish` keeps its lazy
    /// Algorithm 1 line 2 behaviour (max frequencies on the first
    /// `on_quantum`), bit-identical with driving [`CuttlefishDriver`]
    /// directly.
    pub fn build(&self, proc: &mut SimProcessor) -> Box<dyn FrequencyController> {
        match self {
            NodePolicy::Default => Box::new(DefaultGovernor::new()),
            NodePolicy::Cuttlefish(cfg) => Box::new(CuttlefishDriver::new(proc, cfg.clone())),
            NodePolicy::Pinned { cf, uf } => {
                proc.set_core_freq(*cf);
                proc.set_uncore_freq(*uf);
                Box::new(Pinned::new(*cf, *uf))
            }
            NodePolicy::Ondemand => Box::new(Ondemand::new()),
            NodePolicy::Oracle(table) => Box::new(Oracle::new(proc, table.clone())),
            NodePolicy::PidUncore { config, gains } => {
                Box::new(PidUncore::new(proc, config.clone(), *gains))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Policy;
    use simproc::engine::{Chunk, Workload};
    use simproc::freq::HASWELL_2650V3;
    use simproc::perf::CostProfile;

    struct Steady(Chunk);
    impl Workload for Steady {
        fn next_chunk(&mut self, _c: usize, _t: u64) -> Option<Chunk> {
            Some(self.0.clone())
        }
        fn is_done(&self) -> bool {
            false
        }
    }

    fn memory_chunk() -> Chunk {
        Chunk::new(1_000_000, 56_000, 8_000).with_profile(CostProfile::new(0.55, 12.0))
    }

    #[test]
    fn factory_names_match_policies() {
        assert_eq!(NodePolicy::Default.name(), "Default");
        assert_eq!(
            NodePolicy::Cuttlefish(Config::default()).name(),
            "Cuttlefish"
        );
        assert_eq!(
            NodePolicy::Cuttlefish(Config::default().with_policy(Policy::CoreOnly)).name(),
            "Cuttlefish-Core"
        );
        let pinned = NodePolicy::Pinned {
            cf: Freq(12),
            uf: Freq(22),
        };
        assert_eq!(pinned.name(), "Pinned");
    }

    #[test]
    fn built_controllers_report_uniformly() {
        let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
        for policy in [
            NodePolicy::Default,
            NodePolicy::Cuttlefish(Config::default()),
            NodePolicy::Pinned {
                cf: Freq(15),
                uf: Freq(20),
            },
        ] {
            let mut ctrl = policy.build(&mut proc);
            let mut wl = Steady(memory_chunk());
            for _ in 0..50 {
                proc.step(&mut wl);
                ctrl.on_quantum(&mut proc);
            }
            assert_eq!(ctrl.name(), policy.name());
            // Uniform contract: a report is never empty (the Cuttlefish
            // daemon is still in warm-up here, so its list is empty and
            // report() returns no ranges — that is the one exception and
            // it resolves once samples arrive; static controllers always
            // report their synthetic range).
            if !matches!(policy, NodePolicy::Cuttlefish(_)) {
                assert!(!ctrl.report().is_empty(), "{} report empty", ctrl.name());
            }
        }
    }

    #[test]
    fn pinned_holds_its_operating_point() {
        let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
        let mut ctrl = NodePolicy::Pinned {
            cf: Freq(15),
            uf: Freq(20),
        }
        .build(&mut proc);
        let mut wl = Steady(memory_chunk());
        for _ in 0..200 {
            proc.step(&mut wl);
            ctrl.on_quantum(&mut proc);
        }
        assert_eq!(proc.core_freq(), Freq(15));
        assert_eq!(proc.uncore_freq(), Freq(20));
        // The pin is applied at build time: the residency map must
        // contain only the pinned point.
        assert_eq!(proc.frequency_residency().len(), 1);
        let ((cf, uf), _) = proc.frequency_residency().iter().next().unwrap();
        assert_eq!((*cf, *uf), (15, 20));
        let (rc, ru) = ctrl.resolved_fractions();
        assert_eq!((rc, ru), (1.0, 1.0));
    }

    #[test]
    fn ondemand_tracks_the_bound_resource() {
        // Memory-bound streaming: cores stall, so CF sinks well below
        // max while the uncore chases the saturated traffic signal.
        let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
        let mut ctrl = NodePolicy::Ondemand.build(&mut proc);
        let mut wl = Steady(memory_chunk());
        for _ in 0..400 {
            proc.step(&mut wl);
            ctrl.on_quantum(&mut proc);
        }
        assert!(
            proc.core_freq() < Freq(20),
            "stalled cores must not stay near max, got {}",
            proc.core_freq()
        );
        assert!(
            proc.uncore_freq() > Freq(25),
            "saturated traffic must raise the uncore, got {}",
            proc.uncore_freq()
        );
        assert_eq!(ctrl.name(), "Ondemand");
        let report = ctrl.report();
        assert_eq!(report.len(), 1);
        assert!(report[0].occurrences >= 400);

        // Compute-bound: pipeline saturated, no traffic — CF at max,
        // uncore at the floor.
        let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
        let mut ctrl = NodePolicy::Ondemand.build(&mut proc);
        let compute = Chunk::new(1_000_000, 0, 0).with_profile(CostProfile::new(1.0, 6.0));
        let mut wl = Steady(compute);
        for _ in 0..400 {
            proc.step(&mut wl);
            ctrl.on_quantum(&mut proc);
        }
        assert_eq!(proc.core_freq(), HASWELL_2650V3.core.max());
        assert_eq!(proc.uncore_freq(), HASWELL_2650V3.uncore.min());
    }

    #[test]
    fn ondemand_idle_fast_forward_matches_stepping() {
        struct Never;
        impl Workload for Never {
            fn next_chunk(&mut self, _: usize, _: u64) -> Option<Chunk> {
                None
            }
            fn is_done(&self) -> bool {
                true
            }
            fn next_wake_ns(&self, _: u64) -> Option<u64> {
                None
            }
        }
        let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
        let mut ctrl = Ondemand::new();
        let mut wl = Steady(memory_chunk());
        for _ in 0..100 {
            proc.step(&mut wl);
            FrequencyController::on_quantum(&mut ctrl, &mut proc);
        }
        // Busy machine: must be stepped for real.
        assert_eq!(ctrl.idle_quanta_capacity(&proc), 0);
        // Idle down to the fixed point by real stepping.
        let mut guard = 0;
        while ctrl.idle_quanta_capacity(&proc) == 0 {
            proc.step(&mut Never);
            FrequencyController::on_quantum(&mut ctrl, &mut proc);
            guard += 1;
            assert!(guard < 1000, "ondemand must reach its idle fixed point");
        }
        // From the fixed point, skipping equals stepping bit for bit.
        let mut p2 = proc.clone();
        let mut c2 = ctrl.clone();
        for _ in 0..37 {
            proc.step(&mut Never);
            FrequencyController::on_quantum(&mut ctrl, &mut proc);
        }
        p2.advance_idle_quanta(37);
        c2.note_idle_quanta(37);
        assert_eq!(proc.core_freq(), p2.core_freq());
        assert_eq!(proc.uncore_freq(), p2.uncore_freq());
        assert_eq!(
            proc.total_energy_joules().to_bits(),
            p2.total_energy_joules().to_bits()
        );
        assert_eq!(ctrl.quanta, c2.quanta);
    }

    #[test]
    fn ondemand_busy_fast_forward_matches_stepping() {
        // Compute-bound stream: zero traffic (exactly, every quantum)
        // and overload exactly 1.0, so the busy fixed point is
        // drift-free once the rate limit has walked both domains onto
        // their targets.
        let compute = Chunk::new(1_000_000, 0, 0).with_profile(CostProfile::new(1.0, 6.0));
        let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
        let mut ctrl = Ondemand::new();
        let mut wl = Steady(compute);
        proc.step(&mut wl);
        FrequencyController::on_quantum(&mut ctrl, &mut proc);
        // One quantum in, the uncore is still ramping down: no capacity.
        assert_eq!(ctrl.busy_quanta_capacity(&proc, 1_000), 0);
        for _ in 0..400 {
            proc.step(&mut wl);
            FrequencyController::on_quantum(&mut ctrl, &mut proc);
        }
        // At the fixed point the capacity is exactly the offered
        // horizon — telemetry-driven governors must not exceed it.
        assert_eq!(ctrl.busy_quanta_capacity(&proc, 123), 123);
        let mut p2 = proc.clone();
        let mut c2 = ctrl.clone();
        let mut wl2 = Steady(Chunk::new(1_000_000, 0, 0).with_profile(CostProfile::new(1.0, 6.0)));
        for _ in 0..37 {
            proc.step(&mut wl);
            FrequencyController::on_quantum(&mut ctrl, &mut proc);
        }
        assert_eq!(p2.advance_busy_quanta(&mut wl2, 37), 37);
        c2.note_busy_quanta(37, &p2);
        assert_eq!(proc.core_freq(), p2.core_freq());
        assert_eq!(proc.uncore_freq(), p2.uncore_freq());
        assert_eq!(
            proc.total_energy_joules().to_bits(),
            p2.total_energy_joules().to_bits()
        );
        assert_eq!(
            proc.total_instructions().to_bits(),
            p2.total_instructions().to_bits()
        );
        assert_eq!(ctrl.quanta, c2.quanta);
    }

    #[test]
    fn drive_quanta_fast_forwards_busy_stretches_under_pinned() {
        let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
        let mut ctrl = NodePolicy::Pinned {
            cf: Freq(15),
            uf: Freq(20),
        }
        .build(&mut proc);
        let mut wl = Steady(memory_chunk());
        let done = drive_quanta(&mut proc, &mut wl, ctrl.as_mut(), 500);
        assert_eq!(done, 500, "a non-draining workload consumes the budget");
        assert_eq!(proc.total_quanta(), 500);
        assert!(
            proc.busy_advanced_quanta() >= 490,
            "the applied pin must fast-forward nearly everything, stepped {}",
            proc.stepped_quanta()
        );
        // The report's quanta count survives the fast path.
        assert_eq!(ctrl.report()[0].occurrences, 500);
        assert_eq!(proc.core_freq(), Freq(15));
        assert_eq!(proc.uncore_freq(), Freq(20));
    }

    #[test]
    fn pid_uncore_never_grants_busy_capacity() {
        let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
        let mut ctrl = NodePolicy::PidUncore {
            config: Config::default(),
            gains: PidGains::default(),
        }
        .build(&mut proc);
        let mut wl = Steady(memory_chunk());
        for _ in 0..200 {
            proc.step(&mut wl);
            ctrl.on_quantum(&mut proc);
        }
        // By design: a per-quantum PID cannot fast-forward while busy.
        assert_eq!(ctrl.busy_quanta_capacity(&proc, u64::MAX), 0);
    }

    /// The Table 2 memory-bound operating point (driver tests pin the
    /// same ranges on the same chunks).
    fn memory_table() -> OracleTable {
        OracleTable {
            slab_width: 0.004,
            tinv_ns: 20_000_000,
            entries: vec![OracleEntry {
                slab: TipiSlab(16),
                cf: Freq(12),
                uf: Freq(22),
            }],
        }
    }

    #[test]
    fn oracle_table_validation_rejects_bad_shapes() {
        assert!(memory_table().validate().is_ok());
        let empty = OracleTable {
            entries: Vec::new(),
            ..memory_table()
        };
        assert!(empty.validate().is_err());
        let bad_width = OracleTable {
            slab_width: 0.0,
            ..memory_table()
        };
        assert!(bad_width.validate().is_err());
        let mut dup = memory_table();
        dup.entries.push(dup.entries[0]);
        assert!(dup.validate().is_err());
        let mut zero = memory_table();
        zero.entries[0].cf = Freq(0);
        assert!(zero.validate().is_err());
    }

    #[test]
    fn oracle_nearest_resolves_unknown_slabs() {
        let table = OracleTable {
            entries: vec![
                OracleEntry {
                    slab: TipiSlab(0),
                    cf: Freq(23),
                    uf: Freq(12),
                },
                OracleEntry {
                    slab: TipiSlab(16),
                    cf: Freq(12),
                    uf: Freq(22),
                },
            ],
            ..memory_table()
        };
        assert_eq!(table.nearest(TipiSlab(0)), 0);
        assert_eq!(table.nearest(TipiSlab(3)), 0);
        assert_eq!(table.nearest(TipiSlab(14)), 1);
        assert_eq!(table.nearest(TipiSlab(40)), 1);
        // Equidistant resolves to the lower slab.
        assert_eq!(table.nearest(TipiSlab(8)), 0);
    }

    #[test]
    fn oracle_replays_its_table_and_reports_it() {
        let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
        let mut ctrl = NodePolicy::Oracle(memory_table()).build(&mut proc);
        let mut wl = Steady(memory_chunk());
        // Before the first tick the boot operating point holds.
        for _ in 0..10 {
            proc.step(&mut wl);
            ctrl.on_quantum(&mut proc);
        }
        assert_eq!(proc.core_freq(), Freq(23));
        for _ in 0..200 {
            proc.step(&mut wl);
            ctrl.on_quantum(&mut proc);
        }
        assert_eq!(proc.core_freq(), Freq(12), "table point applied");
        assert_eq!(proc.uncore_freq(), Freq(22));
        assert_eq!(ctrl.name(), "Oracle");
        let report = ctrl.report();
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].cf_opt, Some(Freq(12)));
        assert_eq!(report[0].uf_opt, Some(Freq(22)));
        assert!(report[0].occurrences >= 9, "one hit per Tinv tick");
        assert_eq!(ctrl.resolved_fractions(), (1.0, 1.0));
    }

    #[test]
    fn oracle_idle_capacity_stops_at_the_next_tick() {
        let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
        let mut ctrl = NodePolicy::Oracle(memory_table()).build(&mut proc);
        assert_eq!(ctrl.idle_quanta_capacity(&proc), 0, "pre-epoch");
        let mut wl = Steady(memory_chunk());
        proc.step(&mut wl);
        ctrl.on_quantum(&mut proc);
        // Epoch anchored one quantum back; 20 ms tick = 20 quanta, so
        // 18 whole quanta may pass before the tick must run for real.
        assert_eq!(ctrl.idle_quanta_capacity(&proc), 18);
        // The busy bound is the same tick schedule — the horizon
        // argument is irrelevant for a clock-scheduled controller.
        assert_eq!(ctrl.busy_quanta_capacity(&proc, 3), 18);
    }

    /// `from_trace` must rediscover Table 2's settling points — the
    /// very frequencies the Cuttlefish driver converges to on the same
    /// chunks (see `driver::tests`) — from nothing but a traced
    /// Default-governor run.
    #[test]
    fn oracle_from_trace_reproduces_table2_settling_points() {
        /// Phase-alternating workload: 0.5 s streaming, 0.5 s compute.
        struct Phased;
        impl Workload for Phased {
            fn next_chunk(&mut self, _c: usize, t: u64) -> Option<Chunk> {
                if (t / 500_000_000).is_multiple_of(2) {
                    Some(memory_chunk())
                } else {
                    Some(Chunk::new(1_000_000, 800, 200).with_profile(CostProfile::new(0.9, 4.0)))
                }
            }
            fn is_done(&self) -> bool {
                false
            }
        }
        let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
        let mut gov = DefaultGovernor::new();
        let mut wl = Phased;
        let mut last = CounterSnapshot::capture(&proc).unwrap();
        let mut samples = Vec::new();
        for q in 1..=8_000u64 {
            proc.step(&mut wl);
            gov.on_quantum(&mut proc);
            if q.is_multiple_of(20) {
                let now = CounterSnapshot::capture(&proc).unwrap();
                if let Some(s) = delta(&last, &now) {
                    samples.push(TraceSample {
                        tipi: s.tipi,
                        jpi: s.jpi,
                        watts: proc.last_quantum().power_watts,
                        cf: proc.core_freq(),
                        uf: proc.uncore_freq(),
                    });
                }
                last = now;
            }
        }
        let oracle =
            Oracle::from_trace(&proc, &samples, &OracleDerivation::default()).expect("derives");
        let table = oracle.table();
        // Memory-bound phase (TIPI 0.064, slab 16): Table 2's Heat-like
        // settling point — cores driven down, uncore at the knee.
        let mem = table
            .entries
            .iter()
            .find(|e| e.slab == TipiSlab(16))
            .expect("frequent memory-bound slab derived");
        assert!(mem.cf <= Freq(14), "CFopt driven down, got {}", mem.cf);
        assert!(
            (Freq(20)..=Freq(24)).contains(&mem.uf),
            "UFopt at the knee, got {}",
            mem.uf
        );
        // Compute-bound phase (TIPI 0.001, slab 0): UTS-like — CF at
        // max (race to idle), uncore at its floor.
        let comp = table
            .entries
            .iter()
            .find(|e| e.slab == TipiSlab(0))
            .expect("frequent compute-bound slab derived");
        assert_eq!(comp.cf, Freq(23), "CFopt pinned at max");
        assert!(comp.uf <= Freq(14), "UFopt at the floor, got {}", comp.uf);
    }

    #[test]
    fn pid_gains_validation_rejects_bad_shapes() {
        assert!(PidGains::default().validate().is_ok());
        for bad in [
            PidGains {
                kp: f64::NAN,
                ..PidGains::default()
            },
            PidGains {
                ki: -1.0,
                ..PidGains::default()
            },
            PidGains {
                setpoint: 0.0,
                ..PidGains::default()
            },
            PidGains {
                setpoint: 1.5,
                ..PidGains::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn pid_uncore_tracks_traffic_and_delegates_core_search() {
        // Memory-bound streaming: the loop settles the uncore well
        // below max (bandwidth headroom instead of max clocking).
        let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
        let mut ctrl = NodePolicy::PidUncore {
            config: Config {
                warmup_ns: 500_000_000,
                ..Config::default()
            },
            gains: PidGains::default(),
        }
        .build(&mut proc);
        let mut wl = Steady(memory_chunk());
        for _ in 0..6_000 {
            proc.step(&mut wl);
            ctrl.on_quantum(&mut proc);
        }
        assert_eq!(ctrl.name(), "PidUncore");
        assert!(
            proc.uncore_freq() < HASWELL_2650V3.uncore.max(),
            "saturating traffic must not pin the uncore at max, got {}",
            proc.uncore_freq()
        );
        assert!(
            proc.uncore_freq() >= Freq(18),
            "the loop must keep serving the traffic, got {}",
            proc.uncore_freq()
        );
        // The delegated core search ran: its daemon profiled samples.
        let report = ctrl.report();
        assert!(!report.is_empty(), "core search discovered ranges");

        // Compute-bound: no traffic — the loop sinks the uncore to the
        // domain floor.
        let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
        let mut ctrl = NodePolicy::PidUncore {
            config: Config::default(),
            gains: PidGains::default(),
        }
        .build(&mut proc);
        let compute = Chunk::new(1_000_000, 0, 0).with_profile(CostProfile::new(1.0, 6.0));
        let mut wl = Steady(compute);
        for _ in 0..1_000 {
            proc.step(&mut wl);
            ctrl.on_quantum(&mut proc);
        }
        assert_eq!(proc.uncore_freq(), HASWELL_2650V3.uncore.min());
    }

    #[test]
    fn policy_validation_covers_the_new_arms() {
        assert!(NodePolicy::Default.validate().is_ok());
        assert!(NodePolicy::Oracle(memory_table()).validate().is_ok());
        assert!(NodePolicy::Oracle(OracleTable {
            entries: Vec::new(),
            ..memory_table()
        })
        .validate()
        .is_err());
        assert!(NodePolicy::PidUncore {
            config: Config::default(),
            gains: PidGains {
                setpoint: -0.5,
                ..PidGains::default()
            },
        }
        .validate()
        .is_err());
    }

    #[test]
    fn default_resolves_nothing() {
        let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
        let ctrl = NodePolicy::Default.build(&mut proc);
        assert_eq!(ctrl.resolved_fractions(), (0.0, 0.0));
        assert_eq!(ctrl.report().len(), 1);
        assert!(ctrl.report()[0].cf_opt.is_none());
    }
}
