//! # cuttlefish — energy-efficient multicore execution via DVFS + UFS
//!
//! A Rust reproduction of **"Cuttlefish: Library for Achieving Energy
//! Efficiency in Multicore Parallel Programs"** (Kumar, Gupta, Kumar,
//! Bhalachandra — SC 2021).
//!
//! Cuttlefish is a *programming-model-oblivious* runtime: it never
//! inspects the application. A daemon wakes every `Tinv` (20 ms by
//! default), reads hardware counters, and computes two quantities:
//!
//! * **TIPI** — TOR inserts per instruction — identifying the current
//!   memory access pattern (MAP), and
//! * **JPI** — joules per instruction — the energy-efficiency metric to
//!   minimize.
//!
//! For every distinct TIPI range (0.004-wide slab) it discovers, the
//! daemon explores the core-frequency (DVFS) axis and then the
//! uncore-frequency (UFS) axis for the JPI-minimal setting, using:
//!
//! * linear descent in steps of two with 10-sample JPI averaging and
//!   boundary tie-breaks (§4.3, Algorithm 2, Figure 5);
//! * an uncore exploration window estimated from the optimal core
//!   frequency (§4.3, Algorithm 3);
//! * exploration-bound inheritance from neighbouring TIPI ranges in a
//!   sorted list (§4.4) and bound revalidation that propagates
//!   mid-exploration discoveries to neighbours (§4.5).
//!
//! ## Using the library
//!
//! The paper's C/C++ API is two calls — `cuttlefish::start()` and
//! `cuttlefish::stop()` around the region to tune. This crate keeps
//! that shape for real-time use ([`api::start`]/[`api::Handle::stop`]
//! over any [`backend::PowerBackend`]) and additionally exposes the
//! daemon as a deterministic state machine ([`daemon::Daemon`]) plus a
//! simulation driver ([`driver::CuttlefishDriver`]) that plugs into
//! `simproc` for reproducible experiments.
//!
//! ```
//! use cuttlefish::{Config, Policy};
//! use cuttlefish::driver::CuttlefishDriver;
//! use simproc::{SimProcessor, HASWELL_2650V3};
//! use simproc::engine::{Chunk, Workload};
//!
//! // A steady compute-bound workload.
//! struct Steady;
//! impl Workload for Steady {
//!     fn next_chunk(&mut self, _c: usize, _t: u64) -> Option<Chunk> {
//!         Some(Chunk::new(2_000_000, 1_500, 500))
//!     }
//!     fn is_done(&self) -> bool { false }
//! }
//!
//! let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
//! let mut driver = CuttlefishDriver::new(&proc, Config::default());
//! let mut wl = Steady;
//! for _ in 0..8_000 {                      // 8 virtual seconds
//!     proc.step(&mut wl);
//!     driver.on_quantum(&mut proc);
//! }
//! // The daemon has discovered the single TIPI range and tuned it.
//! assert_eq!(driver.daemon().nodes().count(), 1);
//! ```

pub mod api;
pub mod backend;
pub mod controller;
pub mod daemon;
pub mod driver;
pub mod explore;
pub mod list;
pub mod node;
pub mod tipi;
pub mod ufrange;

pub use controller::{
    FrequencyController, NodePolicy, Ondemand, Oracle, OracleDerivation, OracleEntry, OracleTable,
    PidGains, PidUncore, Pinned, TraceSample,
};
pub use daemon::Daemon;
pub use tipi::TipiSlab;

use serde::{Deserialize, Serialize};

/// Which frequency domains Cuttlefish is allowed to adapt — the three
/// build-time variants of the paper's §5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Policy {
    /// Adapt both core (DVFS) and uncore (UFS): "Cuttlefish".
    Both,
    /// Adapt only the core frequency, uncore pinned at max:
    /// "Cuttlefish-Core".
    CoreOnly,
    /// Adapt only the uncore frequency, cores pinned at max:
    /// "Cuttlefish-Uncore".
    UncoreOnly,
}

impl Policy {
    /// Paper display name.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Both => "Cuttlefish",
            Policy::CoreOnly => "Cuttlefish-Core",
            Policy::UncoreOnly => "Cuttlefish-Uncore",
        }
    }
}

/// Runtime configuration (paper defaults).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Profiling interval. 20 ms default (§5.4 picks it as the best
    /// trade-off; RAPL refreshes every 1 ms on Haswell).
    pub tinv_ns: u64,
    /// Warm-up before the daemon acts (§4.1: cold-cache TIPI/JPI
    /// fluctuation at startup), 2 s default.
    pub warmup_ns: u64,
    /// Frequency domains to adapt.
    pub policy: Policy,
    /// JPI readings averaged per frequency before comparing (§4.3).
    pub samples_per_freq: u32,
    /// TIPI slab width (§3.2).
    pub slab_width: f64,
    /// Algorithm 3's window multiplier (the paper's constant 4).
    pub uf_window_mult: f64,
    /// §4.4 optimization: new TIPI nodes inherit exploration bounds
    /// from neighbours. Disable for ablation studies only.
    pub neighbor_inheritance: bool,
    /// §4.5 optimization: bound changes propagate to neighbours
    /// mid-exploration. Disable for ablation studies only.
    pub revalidation: bool,
    /// Optional idle guard (extension beyond the paper, used for MPI+X
    /// executions): a sample whose instruction count falls below this
    /// fraction of the peak per-interval count is treated like a TIPI
    /// transition — its JPI is not recorded. Windows straddling a
    /// compute→barrier boundary otherwise poison the JPI averages with
    /// idle-dominated readings. `None` (default) reproduces the paper's
    /// algorithm exactly.
    pub idle_guard: Option<f64>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            tinv_ns: 20_000_000,
            warmup_ns: 2_000_000_000,
            policy: Policy::Both,
            samples_per_freq: 10,
            slab_width: 0.004,
            uf_window_mult: 4.0,
            neighbor_inheritance: true,
            revalidation: true,
            idle_guard: None,
        }
    }
}

impl Config {
    /// Config with a different `Tinv` (for the Table 3 sensitivity
    /// study).
    pub fn with_tinv_ms(mut self, ms: u64) -> Self {
        self.tinv_ns = ms * 1_000_000;
        self
    }

    /// Config with a different policy.
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper() {
        let c = Config::default();
        assert_eq!(c.tinv_ns, 20_000_000);
        assert_eq!(c.warmup_ns, 2_000_000_000);
        assert_eq!(c.samples_per_freq, 10);
        assert_eq!(c.slab_width, 0.004);
        assert_eq!(c.uf_window_mult, 4.0);
        assert_eq!(c.policy, Policy::Both);
    }

    #[test]
    fn policy_names() {
        assert_eq!(Policy::Both.name(), "Cuttlefish");
        assert_eq!(Policy::CoreOnly.name(), "Cuttlefish-Core");
        assert_eq!(Policy::UncoreOnly.name(), "Cuttlefish-Uncore");
    }

    #[test]
    fn config_builders() {
        let c = Config::default()
            .with_tinv_ms(40)
            .with_policy(Policy::CoreOnly);
        assert_eq!(c.tinv_ns, 40_000_000);
        assert_eq!(c.policy, Policy::CoreOnly);
    }
}
