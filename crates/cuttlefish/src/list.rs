//! The sorted list of TIPI ranges with neighbour-based bound
//! optimization (§4.4) and revalidation (§4.5).
//!
//! The paper keeps nodes in a sorted doubly linked list: walking left
//! to right moves from compute-bound to memory-bound MAPs. The load-
//! bearing invariant is **monotonicity**:
//!
//! * optimal *core* frequency is non-increasing along increasing TIPI
//!   (more memory-bound ⇒ same or lower CFopt), and
//! * optimal *uncore* frequency is non-decreasing along increasing
//!   TIPI.
//!
//! This implementation stores nodes in an ordered map keyed by slab
//! index (same asymptotics and neighbour access as the linked list,
//! with simpler ownership) and concentrates both optimizations here:
//!
//! * [`TipiList::insert`] — a new node inherits exploration bounds from
//!   its neighbours' state (Fig. 6 for CF, Fig. 7 for UF);
//! * [`TipiList::propagate_cf`] / [`TipiList::propagate_uf`] — when a
//!   node's bounds tighten mid-exploration, the same bound is pushed to
//!   every node on the side the invariant constrains (Fig. 8 / Fig. 9).

use crate::explore::Exploration;
use crate::node::Node;
use crate::tipi::TipiSlab;
use std::collections::BTreeMap;

/// Ordered collection of TIPI nodes.
#[derive(Debug, Default)]
pub struct TipiList {
    nodes: BTreeMap<u32, Node>,
}

impl TipiList {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct TIPI ranges discovered.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no ranges have been discovered yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Immutable lookup.
    pub fn get(&self, slab: TipiSlab) -> Option<&Node> {
        self.nodes.get(&slab.0)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, slab: TipiSlab) -> Option<&mut Node> {
        self.nodes.get_mut(&slab.0)
    }

    /// Iterate nodes in TIPI order (compute-bound → memory-bound).
    pub fn iter(&self) -> impl Iterator<Item = &Node> {
        self.nodes.values()
    }

    /// The left (more compute-bound) neighbour of `slab`.
    pub fn left_of(&self, slab: TipiSlab) -> Option<&Node> {
        self.nodes.range(..slab.0).next_back().map(|(_, n)| n)
    }

    /// The right (more memory-bound) neighbour of `slab`.
    pub fn right_of(&self, slab: TipiSlab) -> Option<&Node> {
        self.nodes.range(slab.0 + 1..).next().map(|(_, n)| n)
    }

    /// Insert a node for a newly discovered TIPI range, deriving its
    /// core exploration bounds from its neighbours (§4.4, Fig. 6):
    ///
    /// * `CFRB` ← left neighbour's CFopt if resolved, else the left
    ///   neighbour's current CFRB (a compute-bound neighbour's optimum
    ///   upper-bounds ours); no left neighbour ⇒ CFmax.
    /// * `CFLB` ← right neighbour's CFopt if resolved, else its CFLB;
    ///   no right neighbour ⇒ CFmin.
    pub fn insert(&mut self, slab: TipiSlab, n_cf: usize, needed: u32) -> &mut Node {
        debug_assert!(!self.nodes.contains_key(&slab.0), "node already present");
        let rb = match self.left_of(slab) {
            Some(l) => l.cf_opt().unwrap_or(l.cf.bounds().1),
            None => n_cf - 1,
        };
        let lb = match self.right_of(slab) {
            Some(r) => r.cf_opt().unwrap_or(r.cf.bounds().0),
            None => 0,
        };
        let lb = lb.min(rb);
        let node = Node::new(slab, lb, rb, n_cf, needed);
        self.nodes.insert(slab.0, node);
        self.nodes.get_mut(&slab.0).expect("just inserted")
    }

    /// Insert with the full default exploration range, ignoring
    /// neighbours — the §4.4-disabled ablation path.
    pub fn insert_default(&mut self, slab: TipiSlab, n_cf: usize, needed: u32) -> &mut Node {
        debug_assert!(!self.nodes.contains_key(&slab.0), "node already present");
        let node = Node::new(slab, 0, n_cf - 1, n_cf, needed);
        self.nodes.insert(slab.0, node);
        self.nodes.get_mut(&slab.0).expect("just inserted")
    }

    /// Begin the uncore exploration of `slab`: take Algorithm 3's
    /// window, then clamp with the neighbours' uncore state (§4.4,
    /// Fig. 7 — the mirror of the CF direction, since UFopt is
    /// non-decreasing along increasing TIPI):
    ///
    /// * `UFLB` ← max(window LB, left neighbour's UFopt or UFLB) — a
    ///   compute-bound neighbour's optimum lower-bounds ours
    ///   (Fig. 7(b));
    /// * `UFRB` ← min(window RB, right neighbour's UFopt or UFRB) — a
    ///   memory-bound neighbour's optimum upper-bounds ours
    ///   (Fig. 7(a)).
    pub fn begin_uncore(
        &mut self,
        slab: TipiSlab,
        window: (usize, usize),
        n_uf: usize,
        needed: u32,
    ) {
        self.begin_uncore_opts(slab, window, n_uf, needed, true)
    }

    /// [`TipiList::begin_uncore`] with neighbour clamping optional
    /// (`clamp_neighbors = false` is the §4.4-disabled ablation path).
    pub fn begin_uncore_opts(
        &mut self,
        slab: TipiSlab,
        window: (usize, usize),
        n_uf: usize,
        needed: u32,
        clamp_neighbors: bool,
    ) {
        let lb_floor = clamp_neighbors
            .then(|| {
                self.left_of(slab)
                    .and_then(|l| l.uf_opt().or_else(|| l.uf.as_ref().map(|u| u.bounds().0)))
            })
            .flatten();
        let rb_ceil = clamp_neighbors
            .then(|| {
                self.right_of(slab)
                    .and_then(|r| r.uf_opt().or_else(|| r.uf.as_ref().map(|u| u.bounds().1)))
            })
            .flatten();

        let mut lb = window.0;
        let mut rb = window.1;
        if let Some(f) = lb_floor {
            lb = lb.max(f);
        }
        if let Some(c) = rb_ceil {
            rb = rb.min(c);
        }
        let lb = lb.min(rb);
        let node = self
            .nodes
            .get_mut(&slab.0)
            .expect("begin_uncore on unknown slab");
        node.uf = Some(Exploration::new(lb, rb, n_uf, needed));
    }

    /// §4.5 revalidation for the core domain: `slab`'s CF bounds
    /// changed. Push the new RB to every node on the *right* (their
    /// CFopt can be at most ours — Fig. 8(b)) and the new LB to every
    /// node on the *left* (their CFopt is at least ours — Fig. 8(a)).
    pub fn propagate_cf(&mut self, slab: TipiSlab, rb_lowered: bool, lb_raised: bool) {
        let (lb, rb) = match self.nodes.get(&slab.0) {
            Some(n) => match n.cf_opt() {
                Some(o) => (o, o),
                None => n.cf.bounds(),
            },
            None => return,
        };
        if rb_lowered {
            let right: Vec<u32> = self.nodes.range(slab.0 + 1..).map(|(&k, _)| k).collect();
            for k in right {
                let n = self.nodes.get_mut(&k).expect("key from range");
                n.cf.clamp_bounds(None, Some(rb));
            }
        }
        if lb_raised {
            let left: Vec<u32> = self.nodes.range(..slab.0).map(|(&k, _)| k).collect();
            for k in left {
                let n = self.nodes.get_mut(&k).expect("key from range");
                n.cf.clamp_bounds(Some(lb), None);
            }
        }
    }

    /// §4.5 revalidation for the uncore domain (mirrored): a lowered
    /// UFRB propagates to the *left* (compute-bound neighbours need at
    /// most our uncore — Fig. 9(a)); a raised UFLB propagates to the
    /// *right* (memory-bound neighbours need at least ours — Fig. 9(b)).
    pub fn propagate_uf(&mut self, slab: TipiSlab, rb_lowered: bool, lb_raised: bool) {
        let (lb, rb) = match self.nodes.get(&slab.0).and_then(|n| n.uf.as_ref()) {
            Some(uf) => match uf.opt() {
                Some(o) => (o, o),
                None => uf.bounds(),
            },
            None => return,
        };
        if rb_lowered {
            let left: Vec<u32> = self.nodes.range(..slab.0).map(|(&k, _)| k).collect();
            for k in left {
                let n = self.nodes.get_mut(&k).expect("key from range");
                if let Some(uf) = n.uf.as_mut() {
                    uf.clamp_bounds(None, Some(rb));
                }
            }
        }
        if lb_raised {
            let right: Vec<u32> = self.nodes.range(slab.0 + 1..).map(|(&k, _)| k).collect();
            for k in right {
                let n = self.nodes.get_mut(&k).expect("key from range");
                if let Some(uf) = n.uf.as_mut() {
                    uf.clamp_bounds(Some(lb), None);
                }
            }
        }
    }

    /// Check the monotonicity invariants over resolved optima; returns
    /// a violation description for tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut prev_cf: Option<usize> = None;
        let mut prev_uf: Option<usize> = None;
        for node in self.nodes.values() {
            if let Some(cf) = node.cf_opt() {
                if let Some(p) = prev_cf {
                    if cf > p {
                        return Err(format!(
                            "CFopt rose with TIPI at {} ({cf} > {p})",
                            node.slab
                        ));
                    }
                }
                prev_cf = Some(cf);
            }
            if let Some(uf) = node.uf_opt() {
                if let Some(p) = prev_uf {
                    if uf < p {
                        return Err(format!(
                            "UFopt fell with TIPI at {} ({uf} < {p})",
                            node.slab
                        ));
                    }
                }
                prev_uf = Some(uf);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N_CF: usize = 7;
    const N_UF: usize = 7;

    fn resolve_cf(list: &mut TipiList, slab: TipiSlab, opt: usize) {
        let n = list.get_mut(slab).unwrap();
        n.cf.clamp_bounds(Some(opt), Some(opt));
        assert_eq!(n.cf_opt(), Some(opt));
    }

    #[test]
    fn first_node_gets_default_bounds() {
        let mut list = TipiList::new();
        let n = list.insert(TipiSlab(10), N_CF, 10);
        assert_eq!(n.cf.bounds(), (0, 6));
    }

    #[test]
    fn figure6a_insert_at_front_inherits_lb_from_right() {
        // TIPI-3 exists with CFopt = B (index 1); TIPI-1 inserted in
        // front must get CFLB = B, CFRB = G.
        let mut list = TipiList::new();
        list.insert(TipiSlab(30), N_CF, 10);
        resolve_cf(&mut list, TipiSlab(30), 1);
        let n1 = list.insert(TipiSlab(10), N_CF, 10);
        assert_eq!(n1.cf.bounds(), (1, 6), "LB from right neighbour's CFopt");
    }

    #[test]
    fn figure6b_insert_between_uses_unresolved_rb() {
        // TIPI-1 (front) still exploring with CFRB = E (4); TIPI-3 has
        // CFopt = B (1). TIPI-2 inserted between: LB = 1, RB = 4.
        let mut list = TipiList::new();
        list.insert(TipiSlab(30), N_CF, 10);
        resolve_cf(&mut list, TipiSlab(30), 1);
        {
            let n1 = list.insert(TipiSlab(10), N_CF, 10);
            n1.cf.clamp_bounds(None, Some(4)); // mid-exploration: RB = E
        }
        let n2 = list.insert(TipiSlab(20), N_CF, 10);
        assert_eq!(n2.cf.bounds(), (1, 4));
    }

    #[test]
    fn figure7_uncore_window_clamped_by_neighbours() {
        // TIPI-3 resolved UFopt = C (2). TIPI-1 (more compute-bound)
        // starts uncore exploration with Algorithm-3 window [A, E]:
        // its UFRB clamps to C.
        let mut list = TipiList::new();
        list.insert(TipiSlab(30), N_CF, 10);
        resolve_cf(&mut list, TipiSlab(30), 0);
        list.begin_uncore(TipiSlab(30), (2, 6), N_UF, 10);
        list.get_mut(TipiSlab(30))
            .unwrap()
            .uf
            .as_mut()
            .unwrap()
            .clamp_bounds(Some(2), Some(2)); // UFopt = C

        list.insert(TipiSlab(10), N_CF, 10);
        resolve_cf(&mut list, TipiSlab(10), 6);
        list.begin_uncore(TipiSlab(10), (0, 4), N_UF, 10);
        let uf = list.get(TipiSlab(10)).unwrap().uf.as_ref().unwrap();
        assert_eq!(
            uf.bounds(),
            (0, 2),
            "UFRB clamped to right neighbour's UFopt"
        );
    }

    #[test]
    fn figure8_cf_revalidation_propagates() {
        // Three nodes; the middle one's RB drops → right neighbour's RB
        // capped; the middle's LB rises → left neighbour's LB raised.
        let mut list = TipiList::new();
        list.insert(TipiSlab(10), N_CF, 10);
        list.insert(TipiSlab(20), N_CF, 10);
        list.insert(TipiSlab(30), N_CF, 10);

        list.get_mut(TipiSlab(20))
            .unwrap()
            .cf
            .clamp_bounds(Some(2), Some(4));
        list.propagate_cf(TipiSlab(20), true, true);

        let right = list.get(TipiSlab(30)).unwrap();
        assert_eq!(right.cf.bounds().1, 4, "right neighbour's RB capped");
        let left = list.get(TipiSlab(10)).unwrap();
        assert_eq!(left.cf.bounds().0, 2, "left neighbour's LB raised");
    }

    #[test]
    fn figure9b_uf_collapse_resolves_neighbour() {
        // TIPI-4 resolves UFopt = E (4); TIPI-5's window was [C, E] —
        // propagation raises its LB to E, collapsing it to UFopt = E.
        let mut list = TipiList::new();
        list.insert(TipiSlab(40), N_CF, 10);
        list.insert(TipiSlab(50), N_CF, 10);
        resolve_cf(&mut list, TipiSlab(40), 3);
        resolve_cf(&mut list, TipiSlab(50), 2);
        list.begin_uncore(TipiSlab(50), (2, 4), N_UF, 10);
        list.begin_uncore(TipiSlab(40), (1, 4), N_UF, 10);

        // TIPI-4 resolves UFopt = 4.
        list.get_mut(TipiSlab(40))
            .unwrap()
            .uf
            .as_mut()
            .unwrap()
            .clamp_bounds(Some(4), None);
        assert_eq!(list.get(TipiSlab(40)).unwrap().uf_opt(), Some(4));
        list.propagate_uf(TipiSlab(40), false, true);

        let n5 = list.get(TipiSlab(50)).unwrap();
        assert_eq!(
            n5.uf_opt(),
            Some(4),
            "neighbour collapsed to the same optimum"
        );
    }

    #[test]
    fn neighbour_queries() {
        let mut list = TipiList::new();
        list.insert(TipiSlab(10), N_CF, 10);
        list.insert(TipiSlab(20), N_CF, 10);
        list.insert(TipiSlab(30), N_CF, 10);
        assert_eq!(list.left_of(TipiSlab(20)).unwrap().slab, TipiSlab(10));
        assert_eq!(list.right_of(TipiSlab(20)).unwrap().slab, TipiSlab(30));
        assert!(list.left_of(TipiSlab(10)).is_none());
        assert!(list.right_of(TipiSlab(30)).is_none());
        // Queries between existing slabs resolve to nearest.
        assert_eq!(list.left_of(TipiSlab(25)).unwrap().slab, TipiSlab(20));
        assert_eq!(list.right_of(TipiSlab(25)).unwrap().slab, TipiSlab(30));
    }

    #[test]
    fn invariant_checker_catches_violations() {
        let mut list = TipiList::new();
        list.insert(TipiSlab(10), N_CF, 10);
        list.insert(TipiSlab(20), N_CF, 10);
        assert!(list.check_invariants().is_ok());
        resolve_cf(&mut list, TipiSlab(10), 2);
        // A memory-bound node with a *higher* CFopt violates monotonicity.
        list.get_mut(TipiSlab(20))
            .unwrap()
            .cf
            .clamp_bounds(Some(5), Some(5));
        assert!(list.check_invariants().is_err());
    }
}
