//! The paper's two-call application API: `cuttlefish::start()` /
//! `cuttlefish::stop()`.
//!
//! [`start`] spawns the daemon thread over a [`PowerBackend`]; dropping
//! the returned [`Handle`] (or calling [`Handle::stop`]) shuts the
//! daemon down and restores the platform's frequency settings, exactly
//! like the C++ library's scope. Real-time behaviour — warm-up sleep,
//! `Tinv` cadence — lives here; the decision logic is the shared
//! [`Daemon`] state machine.
//!
//! In the paper, the daemon thread is pinned to a fixed core so its
//! interference pattern is stable; thread pinning is platform-specific
//! and outside the scope of this reproduction (the daemon's work per
//! wake-up — a few counter reads and comparisons — is microseconds).

use crate::backend::PowerBackend;
use crate::daemon::{Daemon, NodeReport};
use crate::Config;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Shared daemon state published for introspection while running.
#[derive(Debug, Default)]
struct Published {
    report: Vec<NodeReport>,
    total_samples: u64,
}

/// Running Cuttlefish instance.
pub struct Handle {
    stop: Arc<AtomicBool>,
    published: Arc<Mutex<Published>>,
    thread: Option<JoinHandle<()>>,
}

impl Handle {
    /// Signal the daemon, join it, restore platform state, and return
    /// the final per-TIPI-range report — the daemon's complete learned
    /// state, published one last time on the way out, so callers need
    /// no racy post-join [`report`](Handle::report) read.
    pub fn stop(mut self) -> Vec<NodeReport> {
        self.shutdown();
        self.published.lock().report.clone()
    }

    /// Current per-TIPI-range report (Table 2 view) — refreshed each
    /// `Tinv` by the daemon while running; [`stop`](Handle::stop)
    /// returns the final one.
    pub fn report(&self) -> Vec<NodeReport> {
        self.published.lock().report.clone()
    }

    /// Total samples the daemon has processed.
    pub fn total_samples(&self) -> u64 {
        self.published.lock().total_samples
    }

    /// Idempotent: the join handle is taken exactly once, so a
    /// [`stop`](Handle::stop) followed by the implicit [`Drop`] (or
    /// any repeated drop path) is a no-op. A daemon that panicked
    /// mid-publish leaves the join `Err` (swallowed — the handle's
    /// job is shutdown, not re-raising) and possibly a poisoned
    /// publish mutex; the parking_lot-style lock recovers poisoned
    /// state instead of panicking, so the final report read above
    /// still returns the last consistent publication.
    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Handle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Start the Cuttlefish daemon over `backend` — the library's
/// `cuttlefish::start()`.
pub fn start<B: PowerBackend + 'static>(mut backend: B, cfg: Config) -> Handle {
    let stop = Arc::new(AtomicBool::new(false));
    let published = Arc::new(Mutex::new(Published::default()));
    let stop2 = stop.clone();
    let published2 = published.clone();

    let thread = std::thread::Builder::new()
        .name("cuttlefish-daemon".into())
        .spawn(move || {
            let (core, uncore) = backend.domains();
            let mut daemon = Daemon::new(cfg.clone(), core, uncore);
            let (cf, uf) = daemon.initial_frequencies();
            backend.set_frequencies(cf, uf);

            // Warm-up (§4.1), interruptible.
            let warmup = Duration::from_nanos(cfg.warmup_ns);
            let step = Duration::from_millis(20);
            let mut waited = Duration::ZERO;
            while waited < warmup && !stop2.load(Ordering::SeqCst) {
                std::thread::sleep(step.min(warmup - waited));
                waited += step;
            }
            // Baseline snapshot.
            let _ = backend.sample();

            let tinv = Duration::from_nanos(cfg.tinv_ns);
            while !stop2.load(Ordering::SeqCst) {
                std::thread::sleep(tinv);
                if let Some(sample) = backend.sample() {
                    let (cf, uf) = daemon.tick(sample);
                    backend.set_frequencies(cf, uf);
                    let mut p = published2.lock();
                    p.report = daemon.report();
                    p.total_samples = daemon.total_samples();
                }
            }
            // Final publication: a stop() racing the last tick (or
            // arriving during warm-up) still observes the daemon's
            // complete learned state.
            {
                let mut p = published2.lock();
                p.report = daemon.report();
                p.total_samples = daemon.total_samples();
            }
            backend.restore();
        })
        .expect("failed to spawn cuttlefish daemon");

    Handle {
        stop,
        published,
        thread: Some(thread),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SharedSimBackend;
    use simproc::engine::{Chunk, Workload};
    use simproc::freq::{Freq, HASWELL_2650V3};
    use simproc::perf::CostProfile;
    use simproc::SimProcessor;

    struct Steady(Chunk);
    impl Workload for Steady {
        fn next_chunk(&mut self, _c: usize, _t: u64) -> Option<Chunk> {
            Some(self.0.clone())
        }
        fn is_done(&self) -> bool {
            false
        }
    }

    /// Fast config so wall-clock tests stay quick: tiny warm-up, 2 ms
    /// Tinv, 3 samples per frequency.
    fn fast_cfg() -> Config {
        Config {
            tinv_ns: 2_000_000,
            warmup_ns: 10_000_000,
            samples_per_freq: 3,
            ..Config::default()
        }
    }

    #[test]
    fn start_stop_lifecycle_restores_frequencies() {
        let proc = Arc::new(Mutex::new(SimProcessor::new(HASWELL_2650V3.clone())));
        let backend = SharedSimBackend::new(proc.clone());
        let handle = start(backend, fast_cfg());

        // A workload thread advancing virtual time in step with real
        // time (1 quantum per wall-clock iteration).
        let chunk = Chunk::new(1_000_000, 56_000, 8_000).with_profile(CostProfile::new(0.55, 12.0));
        for _ in 0..400 {
            {
                let mut p = proc.lock();
                let mut wl = Steady(chunk.clone());
                for _ in 0..5 {
                    p.step(&mut wl);
                }
            }
            std::thread::sleep(Duration::from_millis(1));
        }

        // The daemon must have sampled and discovered the TIPI range.
        assert!(handle.total_samples() > 10, "daemon should have ticked");

        // stop() returns the final report — no re-read after join.
        let report = handle.stop();
        assert!(!report.is_empty());
        // After stop, the session restore puts the controls back.
        let mut p = proc.lock();
        let mut wl = Steady(chunk);
        p.step(&mut wl);
        assert_eq!(p.core_freq(), Freq(23));
        assert_eq!(p.uncore_freq(), Freq(30));
    }

    #[test]
    fn drop_also_shuts_down() {
        let proc = Arc::new(Mutex::new(SimProcessor::new(HASWELL_2650V3.clone())));
        let backend = SharedSimBackend::new(proc);
        let handle = start(backend, fast_cfg());
        drop(handle); // must not hang
    }
}
