//! Uncore exploration-window estimation — Algorithm 3.
//!
//! Once a TIPI node's optimal core frequency is known, the uncore
//! search does not span the whole UFS domain. Section 3.2's
//! observation — optimal core and uncore frequencies move in opposite
//! directions — is encoded as a straight line through
//! `(CFmax, UFmin)` and `(CFmin, UFmax)`; the window of width
//! `mult · nUF / nCF` (the paper's constant `mult = 4`) is centred on
//! the line's estimate and shifted inward at domain boundaries so its
//! width is preserved.

/// Compute the uncore exploration window `[lb, rb]` (domain indices)
/// from the resolved core optimum.
///
/// * `cf_opt` — core optimum as an index into a core domain of
///   `n_cf` levels.
/// * `n_uf` — uncore domain size.
/// * `mult` — window multiplier (paper: 4).
pub fn uf_window(cf_opt: usize, n_cf: usize, n_uf: usize, mult: f64) -> (usize, usize) {
    assert!(n_cf > 0 && n_uf > 0 && cf_opt < n_cf);
    let uf_max = (n_uf - 1) as i64;

    // Line 1: Range = mult · nUF / nCF (kept fractional; quantizing the
    // half-width early would clip the shifted window by one level at
    // the domain edges — the paper's measured UFopt of 2.2 GHz for
    // memory-bound codes requires the unclipped width).
    let range = (mult * n_uf as f64) / n_cf as f64;
    let half = range / 2.0;

    // Lines 2–3: the anti-correlation line, in index space.
    let alpha = if n_cf > 1 {
        (n_uf - 1) as f64 / (n_cf - 1) as f64
    } else {
        0.0
    };
    let est = (uf_max as f64 - alpha * cf_opt as f64).clamp(0.0, uf_max as f64);

    // Lines 4–5: centred window.
    let mut lb = est - half;
    let mut rb = est + half;

    // Lines 6–11: shift the window inward at the boundaries so its
    // width stays `range`.
    if rb > uf_max as f64 {
        lb -= rb - uf_max as f64;
        rb = uf_max as f64;
    }
    if lb < 0.0 {
        rb += -lb;
        lb = 0.0;
    }

    let lb = (lb.floor() as i64).clamp(0, uf_max) as usize;
    let rb = (rb.ceil() as i64).clamp(0, uf_max) as usize;
    (lb, rb.max(lb))
}

#[cfg(test)]
mod tests {
    use super::*;

    // The paper's machine: 12 core levels, 19 uncore levels, mult 4.
    const N_CF: usize = 12;
    const N_UF: usize = 19;

    #[test]
    fn cf_max_maps_to_uncore_bottom() {
        let (lb, rb) = uf_window(N_CF - 1, N_CF, N_UF, 4.0);
        assert_eq!(lb, 0, "CFopt = max ⇒ window starts at UFmin");
        // Window width = 4·19/12 ≈ 6.33 (fractional), ceil'd outward:
        // the shifted window is [0, 7].
        assert!(rb <= 7, "window stays near the bottom, rb = {rb}");
        assert!(rb >= 3, "window keeps its width after the shift, rb = {rb}");
    }

    #[test]
    fn cf_min_maps_to_uncore_top() {
        let (lb, rb) = uf_window(0, N_CF, N_UF, 4.0);
        assert_eq!(rb, N_UF - 1, "CFopt = min ⇒ window ends at UFmax");
        assert!(lb >= N_UF - 1 - 8, "window near the top, lb = {lb}");
    }

    #[test]
    fn mid_cf_gives_interior_window() {
        let (lb, rb) = uf_window(N_CF / 2, N_CF, N_UF, 4.0);
        assert!(lb > 0 && rb < N_UF - 1, "interior window [{lb}, {rb}]");
        assert!(rb - lb <= 8);
    }

    #[test]
    fn window_much_smaller_than_domain() {
        for cf in 0..N_CF {
            let (lb, rb) = uf_window(cf, N_CF, N_UF, 4.0);
            assert!(lb <= rb);
            assert!(rb < N_UF);
            assert!(
                rb - lb < 9,
                "window should cut the 19-level domain well down, got {}",
                rb - lb + 1
            );
        }
    }

    #[test]
    fn estimates_are_monotone_in_cf() {
        // Higher CFopt ⇒ the window shifts down (anti-correlation).
        let mut prev_mid = i64::MAX;
        for cf in 0..N_CF {
            let (lb, rb) = uf_window(cf, N_CF, N_UF, 4.0);
            let mid = (lb + rb) as i64 / 2;
            assert!(mid <= prev_mid, "window centre must not rise with CF");
            prev_mid = mid;
        }
    }

    #[test]
    fn paper_hypothetical_machine_example() {
        // Figure 4(e): 7 levels each, CFopt = A (min) ⇒ UF window
        // [C, G]: the top of the domain, width 4 = floor(4·7/7).
        let (lb, rb) = uf_window(0, 7, 7, 4.0);
        assert_eq!(rb, 6, "RB = G");
        assert_eq!(lb, 2, "LB = C (window of 4 below G)");
    }

    #[test]
    fn degenerate_single_level_domains() {
        assert_eq!(uf_window(0, 1, 1, 4.0), (0, 0));
        let (lb, rb) = uf_window(0, 1, 5, 4.0);
        assert!(lb <= rb && rb <= 4);
    }
}
