//! Per-domain frequency exploration — Algorithm 2 (`find`) and the
//! boundary rules of Figure 5.
//!
//! One [`Exploration`] instance tracks the search for the JPI-optimal
//! level of one frequency domain (core or uncore) within one TIPI node.
//! Levels are domain indices (`0 = min frequency`).
//!
//! The search walks **downward from the right bound in steps of two**,
//! keeping a running JPI average (10 samples by default) per visited
//! level:
//!
//! * if the level two below beats the current right bound, the right
//!   bound moves down there and the walk continues;
//! * if it loses, the optimum is bracketed: the left bound closes to
//!   `RB − 1` and the adjacent-pair rule of Figure 5 resolves it —
//!   at the very top of the domain the *higher* frequency wins (a
//!   compute-bound MAP, protect performance); anywhere else the *lower*
//!   frequency wins (a memory-bound MAP, favour energy);
//! * bounds may also be squeezed externally (neighbour inheritance,
//!   §4.4/4.5) at any time via [`Exploration::clamp_bounds`].
//!
//! The paper explores linearly rather than by binary search because JPI
//! is measured, not computed: each probe costs 10×`Tinv` of wall time
//! at a possibly-suboptimal frequency, and the modified binary search
//! needs JPI at `mid−1`/`mid`/`mid+1` per split (§4.3's cost analysis).

use serde::{Deserialize, Serialize};

/// Running JPI average for one frequency level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct JpiAvg {
    n: u32,
    sum: f64,
}

impl JpiAvg {
    /// Record one reading unless the average is already final.
    pub fn record(&mut self, jpi: f64, needed: u32) {
        if self.n < needed {
            self.n += 1;
            self.sum += jpi;
        }
    }

    /// Number of readings so far.
    pub fn count(&self) -> u32 {
        self.n
    }

    /// The average once `needed` readings have accumulated.
    pub fn value(&self, needed: u32) -> Option<f64> {
        if self.n >= needed {
            Some(self.sum / self.n as f64)
        } else {
            None
        }
    }
}

/// Exploration state for one frequency domain of one TIPI node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Exploration {
    /// Left (low-frequency) bound, domain index.
    lb: usize,
    /// Right (high-frequency) bound, domain index.
    rb: usize,
    /// Highest index of the domain (for the Figure 5 top-of-domain rule).
    domain_max: usize,
    /// Per-level JPI accumulators (len = domain size).
    jpi: Vec<JpiAvg>,
    /// Resolved optimum.
    opt: Option<usize>,
    /// JPI readings required per level.
    needed: u32,
}

/// What `advance` decided (Algorithm 2's return plus bound-change
/// signals consumed by the §4.5 revalidation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Advance {
    /// Frequency index to run at next.
    pub next: usize,
    /// The right bound moved down this call.
    pub rb_lowered: bool,
    /// The left bound moved up this call.
    pub lb_raised: bool,
    /// The optimum was resolved this call.
    pub resolved: bool,
}

impl Exploration {
    /// Fresh exploration over `[lb, rb]` in a domain of `domain_len`
    /// levels.
    pub fn new(lb: usize, rb: usize, domain_len: usize, needed: u32) -> Self {
        assert!(domain_len > 0 && rb < domain_len && lb <= rb);
        Exploration {
            lb,
            rb,
            domain_max: domain_len - 1,
            jpi: vec![JpiAvg::default(); domain_len],
            // A singleton range needs no exploration.
            opt: (lb == rb).then_some(lb),
            needed,
        }
    }

    /// Current bounds `(lb, rb)`.
    pub fn bounds(&self) -> (usize, usize) {
        (self.lb, self.rb)
    }

    /// The resolved optimum, if any.
    pub fn opt(&self) -> Option<usize> {
        self.opt
    }

    /// Whether a final JPI average exists at `level`.
    pub fn jpi_at(&self, level: usize) -> Option<f64> {
        self.jpi[level].value(self.needed)
    }

    /// Readings collected at `level`.
    pub fn samples_at(&self, level: usize) -> u32 {
        self.jpi[level].count()
    }

    /// Record a JPI reading taken at `level` (the caller has already
    /// discarded TIPI-transition readings, Algorithm 2 line 6–8).
    pub fn record(&mut self, level: usize, jpi: f64) {
        self.jpi[level].record(jpi, self.needed);
    }

    /// Externally squeeze the bounds (§4.4 inheritance / §4.5
    /// revalidation): `lb` may only rise, `rb` may only fall. If the
    /// bounds collapse to one level the optimum resolves to it.
    /// Returns true if anything changed.
    pub fn clamp_bounds(&mut self, lb_floor: Option<usize>, rb_ceil: Option<usize>) -> bool {
        if self.opt.is_some() {
            return false;
        }
        let mut changed = false;
        if let Some(f) = lb_floor {
            let f = f.min(self.rb);
            if f > self.lb {
                self.lb = f;
                changed = true;
            }
        }
        if let Some(c) = rb_ceil {
            let c = c.max(self.lb);
            if c < self.rb {
                self.rb = c;
                changed = true;
            }
        }
        if changed && self.lb == self.rb {
            self.opt = Some(self.lb);
        }
        changed
    }

    /// Figure 5 adjacent-pair rule: at the top of the domain keep the
    /// higher frequency (compute-bound: protect performance), otherwise
    /// take the lower (memory-bound: favour energy).
    fn resolve_adjacent(&self) -> usize {
        if self.rb == self.domain_max {
            self.rb
        } else {
            self.lb
        }
    }

    /// Algorithm 2: decide the next frequency to run, updating bounds
    /// from any newly finalized JPI averages.
    pub fn advance(&mut self) -> Advance {
        let mut adv = Advance {
            next: self.rb,
            rb_lowered: false,
            lb_raised: false,
            resolved: false,
        };

        if let Some(o) = self.opt {
            adv.next = o;
            return adv;
        }

        // Degenerate and adjacent ranges resolve immediately
        // (Algorithm 2 line 2–5 / Figure 5).
        if self.lb == self.rb {
            self.opt = Some(self.lb);
            adv.next = self.lb;
            adv.resolved = true;
            return adv;
        }
        if self.rb - self.lb == 1 {
            let o = self.resolve_adjacent();
            self.opt = Some(o);
            adv.next = o;
            adv.resolved = true;
            return adv;
        }

        // Steps of two: the probe below the right bound.
        let probe = self.rb - 2; // rb - lb >= 2 ⇒ probe >= lb

        // Keep collecting until averages exist (lines 9–12).
        let jpi_rb = match self.jpi_at(self.rb) {
            None => {
                adv.next = self.rb;
                return adv;
            }
            Some(v) => v,
        };
        let jpi_probe = match self.jpi_at(probe) {
            None => {
                adv.next = probe;
                return adv;
            }
            Some(v) => v,
        };

        if jpi_probe < jpi_rb {
            // Moving down helped: shift the right bound (lines 14–16).
            self.rb = probe;
            adv.rb_lowered = true;
            if self.rb == self.lb {
                self.opt = Some(self.rb);
                adv.next = self.rb;
                adv.resolved = true;
            } else {
                adv.next = if self.rb - self.lb > 2 {
                    self.rb - 2
                } else {
                    self.lb
                };
            }
        } else {
            // Moving down hurt: the optimum is bracketed (line 18).
            self.lb = self.rb - 1;
            adv.lb_raised = true;
            let o = self.resolve_adjacent();
            self.opt = Some(o);
            adv.next = o;
            adv.resolved = true;
        }
        adv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 7; // the paper's hypothetical A..G machine
    const NEEDED: u32 = 10;

    /// Drive the exploration against a synthetic JPI curve until it
    /// resolves; returns (optimum, probes visited in order).
    fn run(curve: &dyn Fn(usize) -> f64, lb: usize, rb: usize) -> (usize, Vec<usize>) {
        let mut e = Exploration::new(lb, rb, N, NEEDED);
        let mut visited = Vec::new();
        for _ in 0..1000 {
            let adv = e.advance();
            if adv.resolved || e.opt().is_some() {
                return (e.opt().unwrap(), visited);
            }
            if visited.last() != Some(&adv.next) {
                visited.push(adv.next);
            }
            e.record(adv.next, curve(adv.next));
        }
        panic!("exploration did not resolve");
    }

    #[test]
    fn figure4_descending_curve_finds_minimum_at_a() {
        // JPI improves at every step down: probes G, E, C, A → opt = A
        // (level 0). JPI as a function of the level index must
        // *increase* with frequency for this case.
        let (opt, visited) = run(&|l| 4.0 + l as f64, 0, 6);
        assert_eq!(opt, 0);
        assert_eq!(visited, vec![6, 4, 2, 0], "steps of two from the top");
    }

    #[test]
    fn figure5a_rising_at_top_keeps_max() {
        // JPI at E worse than G (JPI falls with frequency):
        // compute-bound — stay at G.
        let (opt, visited) = run(&|l| 10.0 - l as f64, 0, 6);
        assert_eq!(opt, 6, "top-of-domain adjacent rule picks the max");
        assert_eq!(visited, vec![6, 4]);
    }

    #[test]
    fn figure5b_rising_at_bottom_picks_lb() {
        // Minimum near C: descending beats until A loses to C; bracket
        // [B, C] resolves to B (the untested midpoint, per the paper).
        let curve = |l: usize| match l {
            0 => 5.0, // A worse than C
            2 => 3.0,
            4 => 6.0,
            6 => 9.0,
            _ => 100.0,
        };
        let (opt, visited) = run(&curve, 0, 6);
        assert_eq!(opt, 1, "interior bracket resolves to LB = RB-1");
        assert_eq!(visited, vec![6, 4, 2, 0]);
    }

    #[test]
    fn ten_samples_required_per_level() {
        let mut e = Exploration::new(0, 6, N, NEEDED);
        for i in 0..9 {
            let adv = e.advance();
            assert_eq!(adv.next, 6, "stay at RB until the average is final");
            e.record(6, 1.0);
            assert_eq!(e.samples_at(6), i + 1);
        }
        assert!(e.jpi_at(6).is_none());
        e.record(6, 1.0);
        assert_eq!(e.jpi_at(6), Some(1.0));
        let adv = e.advance();
        assert_eq!(adv.next, 4, "move to RB-2 once RB's average exists");
    }

    #[test]
    fn averages_freeze_after_needed_samples() {
        let mut a = JpiAvg::default();
        for _ in 0..10 {
            a.record(2.0, 10);
        }
        a.record(100.0, 10); // ignored
        assert_eq!(a.value(10), Some(2.0));
    }

    #[test]
    fn singleton_range_resolves_at_construction() {
        let mut e = Exploration::new(3, 3, N, NEEDED);
        assert_eq!(e.opt(), Some(3));
        let adv = e.advance();
        assert_eq!(adv.next, 3);
        assert!(!adv.resolved, "was already resolved before the call");
    }

    #[test]
    fn adjacent_range_at_top_resolves_to_max() {
        let mut e = Exploration::new(5, 6, N, NEEDED);
        let adv = e.advance();
        assert!(adv.resolved);
        assert_eq!(e.opt(), Some(6));
    }

    #[test]
    fn adjacent_range_interior_resolves_to_lb() {
        let mut e = Exploration::new(2, 3, N, NEEDED);
        e.advance();
        assert_eq!(e.opt(), Some(2));
    }

    #[test]
    fn clamp_bounds_narrows_and_resolves() {
        let mut e = Exploration::new(0, 6, N, NEEDED);
        assert!(e.clamp_bounds(Some(2), Some(4)));
        assert_eq!(e.bounds(), (2, 4));
        // Clamping is monotone: cannot widen back.
        assert!(!e.clamp_bounds(Some(1), Some(6)));
        assert_eq!(e.bounds(), (2, 4));
        // Collapse resolves.
        assert!(e.clamp_bounds(Some(4), None));
        assert_eq!(e.opt(), Some(4));
        // No further changes once resolved.
        assert!(!e.clamp_bounds(Some(5), None));
    }

    #[test]
    fn clamp_crossing_bounds_is_safe() {
        let mut e = Exploration::new(0, 6, N, NEEDED);
        // Floor above ceiling: floor is limited to rb first.
        e.clamp_bounds(Some(10), None);
        assert_eq!(e.bounds(), (6, 6));
        assert_eq!(e.opt(), Some(6));
    }

    #[test]
    fn exploration_probe_count_is_halved_by_steps_of_two() {
        // Worst case on a 12-level domain (the paper's core domain):
        // optimum at the bottom costs 6 measured probes (§4.3:
        // "total_frequencies/2 = six"), not 12. The final hop to LB is
        // transient — the next wake-up resolves from bounds alone — so
        // only levels with a completed JPI average count as probes.
        const NEEDED: u32 = 10;
        let mut e = Exploration::new(0, 11, 12, NEEDED);
        for _ in 0..1000 {
            let adv = e.advance();
            if adv.resolved {
                break;
            }
            e.record(adv.next, 8.0 + adv.next as f64);
        }
        assert_eq!(e.opt(), Some(0));
        let measured: Vec<usize> = (0..12).filter(|&l| e.jpi_at(l).is_some()).collect();
        assert_eq!(
            measured,
            vec![1, 3, 5, 7, 9, 11],
            "exactly the six odd levels get full averages"
        );
    }
}
