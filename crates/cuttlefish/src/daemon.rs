//! The Cuttlefish daemon state machine — Algorithm 1.
//!
//! One [`Daemon::tick`] call corresponds to one wake-up of the paper's
//! daemon thread after `Tinv`: it receives the interval's (TIPI, JPI)
//! sample and returns the frequencies to set for the next interval.
//! All timing (warm-up, the `Tinv` sleep) lives in the wrappers
//! ([`crate::driver`] for simulation, [`crate::api`] for threads), so
//! the state machine itself is pure and deterministic — every branch of
//! the published pseudocode is unit-testable.
//!
//! Per tick:
//!
//! 1. Quantize TIPI into its slab; a new slab inserts a node whose core
//!    exploration bounds are inherited from its neighbours (§4.4).
//! 2. If the interval crossed a slab boundary, the JPI reading is
//!    discarded (Algorithm 2 lines 6–8): it blends two MAPs.
//! 3. Drive the node's current exploration stage (core, then uncore —
//!    the uncore window seeded by Algorithm 3 when the core optimum
//!    resolves), propagating every bound movement to neighbours (§4.5).
//! 4. Return `(CFnext, UFnext)`.

use crate::explore::Advance;
use crate::list::TipiList;
use crate::node::{Node, Stage};
use crate::tipi::TipiSlab;
use crate::ufrange::uf_window;
use crate::{Config, Policy};
use simproc::freq::{Freq, FreqDomain};
use simproc::profile::Sample;

/// Snapshot of one TIPI node for reporting (Table 2).
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// The TIPI range.
    pub slab: TipiSlab,
    /// Paper-style range label ("0.064-0.068").
    pub label: String,
    /// Resolved core optimum.
    pub cf_opt: Option<Freq>,
    /// Resolved uncore optimum.
    pub uf_opt: Option<Freq>,
    /// `Tinv` samples attributed to this range.
    pub occurrences: u64,
    /// Share of all samples (the paper calls ranges above 10 %
    /// "frequently occurring").
    pub share: f64,
}

impl NodeReport {
    /// The paper's "frequent TIPI" threshold.
    pub fn is_frequent(&self) -> bool {
        self.share > 0.10
    }
}

/// The Algorithm 1 state machine.
#[derive(Debug)]
pub struct Daemon {
    cfg: Config,
    core: FreqDomain,
    uncore: FreqDomain,
    list: TipiList,
    prev_slab: Option<TipiSlab>,
    /// Domain indices set at the end of the previous tick — the
    /// operating point the incoming sample was measured at.
    cf_prev: usize,
    uf_prev: usize,
    total_samples: u64,
    /// Peak instructions per interval seen so far (idle-guard baseline).
    peak_instructions: f64,
}

impl Daemon {
    /// New daemon for a machine with the given frequency domains.
    pub fn new(cfg: Config, core: FreqDomain, uncore: FreqDomain) -> Self {
        let cf_prev = core.len() - 1;
        let uf_prev = uncore.len() - 1;
        Daemon {
            cfg,
            core,
            uncore,
            list: TipiList::new(),
            prev_slab: None,
            cf_prev,
            uf_prev,
            total_samples: 0,
            peak_instructions: 0.0,
        }
    }

    /// The frequencies Algorithm 1 sets before its loop (line 2): both
    /// domains at maximum.
    pub fn initial_frequencies(&self) -> (Freq, Freq) {
        (self.core.max(), self.uncore.max())
    }

    /// The configuration in effect.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Total `Tinv` samples processed.
    pub fn total_samples(&self) -> u64 {
        self.total_samples
    }

    /// Iterate discovered nodes in TIPI order.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.list.iter()
    }

    /// The TIPI list (tests, invariant checks).
    pub fn list(&self) -> &TipiList {
        &self.list
    }

    /// Table 2 style per-node report.
    pub fn report(&self) -> Vec<NodeReport> {
        let total = self.total_samples.max(1) as f64;
        self.list
            .iter()
            .map(|n| NodeReport {
                slab: n.slab,
                label: n.slab.label(self.cfg.slab_width),
                cf_opt: n.cf_opt().map(|i| self.core.at(i)),
                uf_opt: n.uf_opt().map(|i| self.uncore.at(i)),
                occurrences: n.occurrences,
                share: n.occurrences as f64 / total,
            })
            .collect()
    }

    /// Fractions of distinct ranges with resolved CFopt / UFopt
    /// (Table 2's first columns).
    pub fn resolved_fractions(&self) -> (f64, f64) {
        let n = self.list.len().max(1) as f64;
        let cf = self.list.iter().filter(|x| x.cf_opt().is_some()).count() as f64;
        let uf = self.list.iter().filter(|x| x.uf_opt().is_some()).count() as f64;
        (cf / n, uf / n)
    }

    fn needed(&self) -> u32 {
        self.cfg.samples_per_freq
    }

    /// Process one `Tinv` sample; returns the frequencies for the next
    /// interval.
    pub fn tick(&mut self, sample: Sample) -> (Freq, Freq) {
        let slab = TipiSlab::quantize(sample.tipi, self.cfg.slab_width);
        let mut transition = self.prev_slab != Some(slab);
        if let Some(guard) = self.cfg.idle_guard {
            // Idle-guard extension: boundary windows with abnormally
            // few retired instructions carry idle-dominated JPI — skip
            // their readings like a TIPI transition.
            if (sample.instructions as f64) < guard * self.peak_instructions {
                transition = true;
            }
        }
        self.peak_instructions = self.peak_instructions.max(sample.instructions as f64);
        let n_cf = self.core.len();
        self.total_samples += 1;

        if self.list.get(slab).is_none() {
            if self.cfg.neighbor_inheritance {
                self.list.insert(slab, n_cf, self.needed());
            } else {
                self.list.insert_default(slab, n_cf, self.needed());
            }
            if self.cfg.policy == Policy::UncoreOnly {
                // Cores are pinned at max: collapse the core
                // exploration immediately. The uncore exploration is
                // opened by `ensure_uncore_started` below.
                let node = self.list.get_mut(slab).expect("just inserted");
                node.cf.clamp_bounds(Some(n_cf - 1), None);
                self.list.propagate_cf(slab, true, true);
            }
        }

        let node = self.list.get_mut(slab).expect("present");
        node.occurrences += 1;
        let stage = node.stage();

        let (cf_next, uf_next) = match stage {
            Stage::Core => self.tick_core(slab, sample, transition),
            Stage::Uncore => {
                // The core optimum may have resolved outside tick_core
                // (neighbour clamp collapsing the range, singleton
                // inheritance, UncoreOnly pinning): open the uncore
                // exploration on first contact.
                if self.list.get(slab).expect("present").uf.is_none() {
                    self.ensure_uncore_started(slab);
                }
                self.tick_uncore(slab, sample, transition)
            }
            Stage::Done => {
                let node = self.list.get(slab).expect("present");
                (
                    node.cf_opt().expect("done implies cf"),
                    node.uf_opt().expect("done implies uf"),
                )
            }
        };

        self.prev_slab = Some(slab);
        self.cf_prev = cf_next;
        self.uf_prev = uf_next;
        (self.core.at(cf_next), self.uncore.at(uf_next))
    }

    /// Core-exploration stage of Algorithm 1 (lines 8–24).
    fn tick_core(&mut self, slab: TipiSlab, sample: Sample, transition: bool) -> (usize, usize) {
        let n_uf = self.uncore.len();
        let cf_prev = self.cf_prev;

        let node = self.list.get_mut(slab).expect("present");
        if !transition {
            node.cf.record(cf_prev, sample.jpi);
        }
        let adv: Advance = node.cf.advance();
        if self.cfg.revalidation && (adv.rb_lowered || adv.lb_raised || adv.resolved) {
            self.list.propagate_cf(
                slab,
                adv.rb_lowered || adv.resolved,
                adv.lb_raised || adv.resolved,
            );
        }

        let mut cf_next = adv.next;
        // During core exploration the uncore stays at max (line 14/19).
        let mut uf_next = n_uf - 1;

        if adv.resolved {
            let node = self.list.get(slab).expect("present");
            cf_next = node.cf_opt().expect("resolved");
            self.ensure_uncore_started(slab);
            let node = self.list.get(slab).expect("present");
            // Algorithm 1 line 23: UF exploration starts at its RB.
            uf_next = node.uf.as_ref().expect("just begun").bounds().1;
        }
        (cf_next, uf_next)
    }

    /// Open the uncore exploration of a node whose core optimum is
    /// resolved, per policy:
    ///
    /// * `Both` — Algorithm 3 window from CFopt, clamped by neighbours
    ///   (§4.4, Fig. 7);
    /// * `CoreOnly` — uncore out of scope: pinned at max (resolves
    ///   instantly);
    /// * `UncoreOnly` — the full default uncore range (§5), clamped by
    ///   neighbours.
    fn ensure_uncore_started(&mut self, slab: TipiSlab) {
        let n_cf = self.core.len();
        let n_uf = self.uncore.len();
        let needed = self.needed();
        let node = self.list.get(slab).expect("present");
        if node.uf.is_some() {
            return;
        }
        let cf_opt = node.cf_opt().expect("uncore requires resolved cf");
        let window = match self.cfg.policy {
            Policy::Both => uf_window(cf_opt, n_cf, n_uf, self.cfg.uf_window_mult),
            Policy::CoreOnly => (n_uf - 1, n_uf - 1),
            Policy::UncoreOnly => (0, n_uf - 1),
        };
        self.list
            .begin_uncore_opts(slab, window, n_uf, needed, self.cfg.neighbor_inheritance);
        if self.cfg.revalidation {
            // The resolved core optimum also constrains neighbours (§4.5).
            self.list.propagate_cf(slab, true, true);
        }
    }

    /// Uncore-exploration stage of Algorithm 1 (lines 25–27).
    fn tick_uncore(&mut self, slab: TipiSlab, sample: Sample, transition: bool) -> (usize, usize) {
        let uf_prev = self.uf_prev;
        let node = self.list.get_mut(slab).expect("present");
        let cf_opt = node.cf_opt().expect("uncore stage implies cf resolved");
        let uf = node
            .uf
            .as_mut()
            .expect("uncore stage implies uf exploration");
        if !transition {
            uf.record(uf_prev, sample.jpi);
        }
        let adv = uf.advance();
        if self.cfg.revalidation && (adv.rb_lowered || adv.lb_raised || adv.resolved) {
            self.list.propagate_uf(
                slab,
                adv.rb_lowered || adv.resolved,
                adv.lb_raised || adv.resolved,
            );
        }
        (cf_opt, adv.next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simproc::freq::FreqDomain;

    fn domains() -> (FreqDomain, FreqDomain) {
        (
            FreqDomain::new(Freq(12), Freq(23)),
            FreqDomain::new(Freq(12), Freq(30)),
        )
    }

    fn cfg() -> Config {
        Config {
            samples_per_freq: 2, // fast tests
            ..Config::default()
        }
    }

    fn sample(tipi: f64, jpi: f64) -> Sample {
        Sample {
            tipi,
            jpi,
            instructions: 1_000_000,
            joules: jpi * 1e6,
            dt_ns: 20_000_000,
        }
    }

    /// Drive a daemon against a synthetic JPI landscape. The landscape
    /// maps (cf_idx, uf_idx) → JPI for a fixed TIPI.
    fn run_daemon(
        daemon: &mut Daemon,
        tipi: f64,
        landscape: &dyn Fn(usize, usize) -> f64,
        ticks: usize,
    ) -> (Freq, Freq) {
        let (mut cf, mut uf) = daemon.initial_frequencies();
        for _ in 0..ticks {
            let ci = daemon.core.index_of(cf);
            let ui = daemon.uncore.index_of(uf);
            let s = sample(tipi, landscape(ci, ui));
            let (c, u) = daemon.tick(s);
            cf = c;
            uf = u;
        }
        (cf, uf)
    }

    #[test]
    fn compute_bound_landscape_resolves_to_cf_max_uf_min() {
        // JPI falls with CF and rises with UF — a UTS-like MAP.
        let (core, uncore) = domains();
        let mut d = Daemon::new(cfg(), core, uncore);
        let land = |c: usize, u: usize| 10.0 - c as f64 * 0.3 + u as f64 * 0.2;
        let (cf, uf) = run_daemon(&mut d, 0.001, &land, 400);
        assert_eq!(cf, Freq(23), "CFopt at max");
        assert!(uf <= Freq(13), "UFopt near min, got {uf}");
        let node = d.nodes().next().unwrap();
        assert_eq!(node.cf_opt(), Some(11));
        assert!(node.uf_opt().is_some());
    }

    #[test]
    fn memory_bound_landscape_resolves_to_cf_min_uf_high() {
        // JPI rises with CF and has an interior UF minimum at index 10
        // (2.2 GHz).
        let (core, uncore) = domains();
        let mut d = Daemon::new(cfg(), core, uncore);
        let land = |c: usize, u: usize| 10.0 + c as f64 * 0.3 + ((u as f64) - 10.0).abs() * 0.2;
        let (cf, uf) = run_daemon(&mut d, 0.065, &land, 600);
        assert!(cf <= Freq(13), "CFopt near min, got {cf}");
        assert!(
            (Freq(20)..=Freq(24)).contains(&uf),
            "UFopt near the 2.2 GHz knee, got {uf}"
        );
    }

    #[test]
    fn second_slab_inherits_bounds() {
        let (core, uncore) = domains();
        let mut d = Daemon::new(cfg(), core, uncore);
        // First: a compute-bound slab resolving CFopt = max.
        let land1 = |c: usize, u: usize| 10.0 - c as f64 * 0.3 + u as f64 * 0.2;
        run_daemon(&mut d, 0.001, &land1, 400);
        // Then: a memory-bound slab. Its CF exploration must start with
        // bounds inherited (RB from the compute-bound node's history is
        // irrelevant here since it's on the left; the new node's RB
        // comes from the left neighbour's CFopt = max — i.e. unchanged —
        // but its LB comes from "no right neighbour" = min).
        let land2 = |c: usize, u: usize| 10.0 + c as f64 * 0.3 + u as f64 * 0.1;
        run_daemon(&mut d, 0.065, &land2, 600);
        assert_eq!(d.list().len(), 2);
        assert!(d.list().check_invariants().is_ok());
    }

    #[test]
    fn transition_samples_are_discarded() {
        let (core, uncore) = domains();
        let mut d = Daemon::new(cfg(), core, uncore);
        // Alternate slabs every tick: every sample is a transition, so
        // no JPI is ever recorded and no exploration can resolve.
        for i in 0..100 {
            let tipi = if i % 2 == 0 { 0.001 } else { 0.065 };
            d.tick(sample(tipi, 5.0));
        }
        for node in d.nodes() {
            assert_eq!(node.cf_opt(), None, "no stable samples ⇒ no resolution");
        }
    }

    #[test]
    fn done_nodes_hold_their_frequencies() {
        let (core, uncore) = domains();
        let mut d = Daemon::new(cfg(), core, uncore);
        let land = |c: usize, u: usize| 10.0 - c as f64 * 0.3 + u as f64 * 0.2;
        let (cf1, uf1) = run_daemon(&mut d, 0.001, &land, 400);
        // Further ticks at the same TIPI never move the frequencies.
        let (cf2, uf2) = run_daemon(&mut d, 0.001, &land, 50);
        assert_eq!((cf1, uf1), (cf2, uf2));
    }

    #[test]
    fn core_only_policy_pins_uncore_at_max() {
        let (core, uncore) = domains();
        let mut d = Daemon::new(cfg().with_policy(Policy::CoreOnly), core, uncore);
        let land = |c: usize, _u: usize| 10.0 - c as f64 * 0.3;
        let (cf, uf) = run_daemon(&mut d, 0.001, &land, 400);
        assert_eq!(uf, Freq(30), "Cuttlefish-Core never lowers the uncore");
        assert_eq!(cf, Freq(23));
        let node = d.nodes().next().unwrap();
        assert_eq!(
            node.uf_opt(),
            Some(18),
            "uncore 'optimum' pinned at max index"
        );
    }

    #[test]
    fn uncore_only_policy_pins_core_at_max() {
        let (core, uncore) = domains();
        let mut d = Daemon::new(cfg().with_policy(Policy::UncoreOnly), core, uncore);
        // Memory-bound landscape: interior UF optimum.
        let land = |_c: usize, u: usize| 10.0 + ((u as f64) - 10.0).abs() * 0.2;
        let (cf, uf) = run_daemon(&mut d, 0.065, &land, 600);
        assert_eq!(cf, Freq(23), "Cuttlefish-Uncore never lowers the cores");
        assert!(
            (Freq(20)..=Freq(24)).contains(&uf),
            "UF explored over the full default range, got {uf}"
        );
    }

    #[test]
    fn report_tracks_occurrences_and_frequency() {
        let (core, uncore) = domains();
        let mut d = Daemon::new(cfg(), core, uncore);
        for _ in 0..95 {
            d.tick(sample(0.001, 5.0));
        }
        for _ in 0..5 {
            d.tick(sample(0.065, 5.0));
        }
        let report = d.report();
        assert_eq!(report.len(), 2);
        assert!(report[0].is_frequent());
        assert!(!report[1].is_frequent());
        assert_eq!(report[0].label, "0.000-0.004");
        assert_eq!(report[1].label, "0.064-0.068");
        let (cf_frac, _) = d.resolved_fractions();
        assert!(cf_frac > 0.0);
    }

    #[test]
    fn exploration_starts_at_max_frequencies() {
        let (core, uncore) = domains();
        let d = Daemon::new(cfg(), core, uncore);
        assert_eq!(d.initial_frequencies(), (Freq(23), Freq(30)));
    }
}
