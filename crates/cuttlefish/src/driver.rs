//! Simulation driver: couples the daemon to a [`SimProcessor`] for
//! deterministic experiments.
//!
//! [`CuttlefishDriver::on_quantum`] is called after every engine
//! quantum (1 ms). It implements the daemon thread's outer timing from
//! Algorithm 1: set both domains to max (line 2), sleep through the
//! warm-up (line 3), then wake every `Tinv` to read counters and run
//! the policy. Counter access goes through an allow-listed
//! [`MsrSession`], exactly like MSR-SAFE on the paper's testbed.
//!
//! The `Tinv` wake-up is a *scheduled event on the engine's virtual
//! clock*, not a modulus over counted quanta: the driver anchors an
//! epoch at its first `on_quantum`, derives the warm-up end and every
//! subsequent tick timestamp from it, and compares against
//! `proc.now_ns()`. Between ticks, `on_quantum` is a pure time check —
//! which is what lets idle stretches (cluster barriers, exchange
//! windows) be fast-forwarded without calling the driver at all:
//! [`CuttlefishDriver::idle_quanta_capacity`] reports how far the
//! clock may jump before the next tick fires.

use crate::daemon::Daemon;
use crate::Config;
use simproc::msr::{Access, MsrError, MsrFile, MsrSession, IA32_PERF_CTL, MSR_UNCORE_RATIO_LIMIT};
use simproc::profile::{delta, CounterSnapshot};
use simproc::SimProcessor;

/// Harness-facing driver: one per tuned execution.
#[derive(Debug)]
pub struct CuttlefishDriver {
    daemon: Daemon,
    session: MsrSession,
    /// Engine quantum, cached from the spec at construction.
    quantum_ns: u64,
    /// `Tinv` quantized to whole quanta, in ns (≥ one quantum).
    tinv_step_ns: u64,
    /// Warm-up quantized to whole quanta, in ns.
    warmup_step_ns: u64,
    /// Virtual time one quantum before the first `on_quantum` — the
    /// origin every scheduled tick is derived from.
    epoch_ns: Option<u64>,
    /// Next scheduled profile tick (absolute virtual time).
    next_tick_ns: u64,
    last: Option<CounterSnapshot>,
    /// First MSR write failure, if any. A denied control register puts
    /// the driver in a degraded observe-only mode instead of aborting
    /// the simulation (a misconfigured allow-list on one node must not
    /// take down a whole cluster run).
    write_error: Option<MsrError>,
}

impl CuttlefishDriver {
    /// Create a driver for `proc` (captures the MSR session baseline)
    /// with the standard Cuttlefish allow-list.
    pub fn new(proc: &SimProcessor, cfg: Config) -> Self {
        Self::with_allowlist(proc, cfg, &MsrSession::cuttlefish_allowlist())
    }

    /// Create a driver whose MSR session is restricted to `allow` —
    /// the knob a deployment's MSR-SAFE configuration controls. A list
    /// missing the control registers yields a driver that profiles but
    /// cannot actuate; the failure is reported through
    /// [`last_error`](Self::last_error), not a panic.
    pub fn with_allowlist(proc: &SimProcessor, cfg: Config, allow: &[(u32, Access)]) -> Self {
        let spec = proc.spec();
        let quantum = spec.quantum_ns;
        let tinv_step_ns = (cfg.tinv_ns / quantum).max(1) * quantum;
        let warmup_step_ns = (cfg.warmup_ns / quantum) * quantum;
        let session = MsrSession::open(proc.msr_file(), allow);
        let daemon = Daemon::new(cfg, spec.core.clone(), spec.uncore.clone());
        CuttlefishDriver {
            daemon,
            session,
            quantum_ns: quantum,
            tinv_step_ns,
            warmup_step_ns,
            epoch_ns: None,
            next_tick_ns: 0,
            last: None,
            write_error: None,
        }
    }

    /// The daemon state (for Table 2 reports and tests).
    pub fn daemon(&self) -> &Daemon {
        &self.daemon
    }

    /// The first MSR write failure, if the driver is degraded.
    pub fn last_error(&self) -> Option<&MsrError> {
        self.write_error.as_ref()
    }

    fn write_freqs(
        &self,
        proc: &mut SimProcessor,
        cf: simproc::freq::Freq,
        uf: simproc::freq::Freq,
    ) -> Result<(), MsrError> {
        let file = proc.msr_file_mut();
        self.session
            .write(file, IA32_PERF_CTL, MsrFile::encode_perf_ctl(cf.0))?;
        self.session.write(
            file,
            MSR_UNCORE_RATIO_LIMIT,
            MsrFile::encode_uncore_limit(uf.0, uf.0),
        )?;
        Ok(())
    }

    /// Apply a frequency decision; on the first denial, degrade to
    /// observe-only and remember why.
    fn apply_freqs(
        &mut self,
        proc: &mut SimProcessor,
        cf: simproc::freq::Freq,
        uf: simproc::freq::Freq,
    ) {
        if self.write_error.is_some() {
            return;
        }
        if let Err(e) = self.write_freqs(proc, cf, uf) {
            self.write_error = Some(e);
        }
    }

    /// Advance the daemon clock to the engine's current virtual time.
    /// Call after every quantum the driver is not fast-forwarded over.
    pub fn on_quantum(&mut self, proc: &mut SimProcessor) {
        let now_ns = proc.now_ns();
        if self.epoch_ns.is_none() {
            // First wake-up: anchor the tick schedule one quantum back
            // (the step that just ran) and apply Algorithm 1 line 2 —
            // start at max frequencies.
            let epoch = now_ns.saturating_sub(self.quantum_ns);
            self.epoch_ns = Some(epoch);
            // First profile tick: end of warm-up, except that a warm-up
            // shorter than one quantum means the first tick lands a full
            // `Tinv` after the epoch.
            self.next_tick_ns = if self.warmup_step_ns >= self.quantum_ns {
                epoch + self.warmup_step_ns
            } else {
                epoch + self.tinv_step_ns
            };
            let (cf, uf) = self.daemon.initial_frequencies();
            self.apply_freqs(proc, cf, uf);
        }
        if now_ns < self.next_tick_ns {
            return;
        }
        // Schedule the next tick before acting, so a failed counter
        // capture skips this interval rather than re-arming it.
        while self.next_tick_ns <= now_ns {
            self.next_tick_ns += self.tinv_step_ns;
        }
        let now = match CounterSnapshot::capture(proc) {
            Ok(s) => s,
            Err(_) => return,
        };
        if let Some(prev) = self.last.replace(now) {
            if let Some(sample) = delta(&prev, &now) {
                let (cf, uf) = self.daemon.tick(sample);
                self.apply_freqs(proc, cf, uf);
            }
        }
    }

    /// How many consecutive idle quanta, starting at `proc`'s current
    /// time, may elapse without calling [`on_quantum`]: the stretch up
    /// to (but excluding) the next scheduled `Tinv` tick. Between ticks
    /// `on_quantum` is a pure clock comparison, so skipping those calls
    /// is observationally identical. Returns 0 before the first wake-up
    /// (the initial max-frequency actuation must run).
    ///
    /// [`on_quantum`]: Self::on_quantum
    pub fn idle_quanta_capacity(&self, proc: &SimProcessor) -> u64 {
        if self.epoch_ns.is_none() {
            return 0;
        }
        let now_ns = proc.now_ns();
        if self.next_tick_ns <= now_ns {
            return 0;
        }
        (self.next_tick_ns - now_ns) / self.quantum_ns - 1
    }

    /// Busy twin of [`idle_quanta_capacity`]: the bound is the same —
    /// everything up to (but excluding) the quantum that crosses the
    /// next scheduled `Tinv` tick — because between ticks
    /// [`on_quantum`] is a pure clock comparison *regardless of what
    /// the machine executes*; the telemetry it will eventually snapshot
    /// at the tick accumulates inside the engine either way.
    ///
    /// [`idle_quanta_capacity`]: Self::idle_quanta_capacity
    /// [`on_quantum`]: Self::on_quantum
    pub fn busy_quanta_capacity(&self, proc: &SimProcessor) -> u64 {
        self.idle_quanta_capacity(proc)
    }

    /// `cuttlefish::stop()`: restore the MSR state captured at session
    /// open (frequencies return to the pre-Cuttlefish settings).
    pub fn stop(&mut self, proc: &mut SimProcessor) {
        self.session.restore(proc.msr_file_mut());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simproc::engine::{Chunk, Workload};
    use simproc::freq::{Freq, HASWELL_2650V3};
    use simproc::perf::CostProfile;

    struct Steady(Chunk);
    impl Workload for Steady {
        fn next_chunk(&mut self, _c: usize, _t: u64) -> Option<Chunk> {
            Some(self.0.clone())
        }
        fn is_done(&self) -> bool {
            false
        }
    }

    fn compute_chunk() -> Chunk {
        Chunk::new(1_000_000, 800, 200).with_profile(CostProfile::new(0.9, 4.0))
    }

    fn memory_chunk() -> Chunk {
        Chunk::new(1_000_000, 56_000, 8_000).with_profile(CostProfile::new(0.55, 12.0))
    }

    fn run(chunk: Chunk, seconds: u64) -> (SimProcessor, CuttlefishDriver) {
        let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
        let mut driver = CuttlefishDriver::new(&proc, Config::default());
        let mut wl = Steady(chunk);
        for _ in 0..(seconds * 1000) {
            proc.step(&mut wl);
            driver.on_quantum(&mut proc);
        }
        (proc, driver)
    }

    #[test]
    fn warmup_holds_max_frequencies() {
        let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
        let mut driver = CuttlefishDriver::new(&proc, Config::default());
        let mut wl = Steady(memory_chunk());
        for _ in 0..1500 {
            // 1.5 s < 2 s warm-up
            proc.step(&mut wl);
            driver.on_quantum(&mut proc);
        }
        assert_eq!(proc.core_freq(), Freq(23));
        assert_eq!(proc.uncore_freq(), Freq(30));
        assert_eq!(driver.daemon().total_samples(), 0);
    }

    #[test]
    fn compute_bound_run_lands_on_paper_frequencies() {
        // UTS-like: expect CFopt = 2.3, UFopt ≈ 1.2–1.3 (Table 2).
        let (proc, driver) = run(compute_chunk(), 12);
        assert_eq!(proc.core_freq(), Freq(23), "CF pinned at max");
        assert!(
            proc.uncore_freq() <= Freq(14),
            "uncore driven down, got {}",
            proc.uncore_freq()
        );
        let report = driver.daemon().report();
        assert_eq!(report.len(), 1, "single TIPI range");
        assert_eq!(report[0].cf_opt, Some(Freq(23)));
    }

    #[test]
    fn memory_bound_run_lands_on_paper_frequencies() {
        // Heat-like: expect CFopt ≈ 1.2–1.3, UFopt ≈ 2.1–2.3 (Table 2).
        let (proc, driver) = run(memory_chunk(), 20);
        assert!(
            proc.core_freq() <= Freq(14),
            "cores driven down, got {}",
            proc.core_freq()
        );
        assert!(
            (Freq(20)..=Freq(24)).contains(&proc.uncore_freq()),
            "uncore at the knee, got {}",
            proc.uncore_freq()
        );
        let report = driver.daemon().report();
        assert!(report.iter().any(|r| r.uf_opt.is_some()));
    }

    #[test]
    fn stop_restores_previous_settings() {
        let (mut proc, mut driver) = run(memory_chunk(), 20);
        assert_ne!(proc.core_freq(), Freq(23));
        driver.stop(&mut proc);
        let mut wl = Steady(memory_chunk());
        proc.step(&mut wl);
        assert_eq!(proc.core_freq(), Freq(23));
        assert_eq!(proc.uncore_freq(), Freq(30));
    }

    #[test]
    fn denied_control_registers_degrade_instead_of_panicking() {
        use simproc::msr::{self, MsrError};
        let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
        // Read-only allow-list (a plausible MSR-SAFE misconfiguration):
        // profiling works, actuation is denied.
        let allow = [
            (msr::MSR_PKG_ENERGY_STATUS, Access::Read),
            (msr::IA32_FIXED_CTR0, Access::Read),
            (msr::SIM_TOR_INSERT_MISS_LOCAL, Access::Read),
            (msr::SIM_TOR_INSERT_MISS_REMOTE, Access::Read),
        ];
        let mut driver = CuttlefishDriver::with_allowlist(&proc, Config::default(), &allow);
        let mut wl = Steady(memory_chunk());
        for _ in 0..5_000 {
            proc.step(&mut wl);
            driver.on_quantum(&mut proc); // must not panic
        }
        assert_eq!(
            driver.last_error(),
            Some(&MsrError::Denied(simproc::msr::IA32_PERF_CTL)),
            "the denial is surfaced, not swallowed"
        );
        // Observe-only: the machine stayed at its boot operating point.
        assert_eq!(proc.core_freq(), Freq(23));
        assert_eq!(proc.uncore_freq(), Freq(30));
    }

    #[test]
    fn energy_saving_versus_default_governor_memory_bound() {
        // End-to-end sanity: a Cuttlefish run uses measurably less
        // energy per instruction than the Default governor on a
        // memory-bound workload.
        let seconds = 30u64;
        let jpi_cuttlefish = {
            let (proc, _) = run(memory_chunk(), seconds);
            proc.total_energy_joules() / proc.total_instructions()
        };
        let jpi_default = {
            let mut proc = SimProcessor::new(HASWELL_2650V3.clone());
            let mut gov = simproc::governor::DefaultGovernor::new();
            let mut wl = Steady(memory_chunk());
            for _ in 0..(seconds * 1000) {
                proc.step(&mut wl);
                gov.on_quantum(&mut proc);
            }
            proc.total_energy_joules() / proc.total_instructions()
        };
        let saving = 1.0 - jpi_cuttlefish / jpi_default;
        assert!(
            saving > 0.10,
            "expected >10% JPI saving on memory-bound code, got {:.1}%",
            saving * 100.0
        );
    }
}
