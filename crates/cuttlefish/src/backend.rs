//! Platform abstraction: where the daemon's samples come from and
//! where its frequency decisions go.
//!
//! On the paper's hardware this is MSR reads/writes through MSR-SAFE;
//! here the canonical implementation is the simulated processor. The
//! trait keeps the daemon portable: a real `/dev/msr`-backed
//! implementation would slot in without touching the algorithm.

use simproc::freq::{Freq, FreqDomain};
use simproc::msr::{Access, MsrSession};
use simproc::profile::{delta, CounterSnapshot, Sample};
use simproc::SimProcessor;
use std::sync::Arc;

/// The platform interface the real-time API ([`crate::api`]) drives.
pub trait PowerBackend: Send {
    /// Core and uncore frequency domains of the machine.
    fn domains(&self) -> (FreqDomain, FreqDomain);
    /// Counter deltas since the previous call (TIPI/JPI sample), or
    /// `None` if no instructions retired in the interval.
    fn sample(&mut self) -> Option<Sample>;
    /// Apply frequency decisions.
    fn set_frequencies(&mut self, cf: Freq, uf: Freq);
    /// Restore any platform state captured at session start (called by
    /// `stop()`, mirroring MSR-SAFE's save/restore).
    fn restore(&mut self);
}

/// A [`PowerBackend`] over a shared simulated processor — used by the
/// threaded API in examples and tests. The processor is advanced by
/// some other party (e.g. a workload thread stepping virtual time);
/// the backend only reads counters and writes frequency controls, via
/// an allow-listed [`MsrSession`] exactly like the real library.
pub struct SharedSimBackend {
    proc: Arc<parking_lot::Mutex<SimProcessor>>,
    session: MsrSession,
    last: Option<CounterSnapshot>,
}

impl SharedSimBackend {
    /// Open a session over the shared processor.
    pub fn new(proc: Arc<parking_lot::Mutex<SimProcessor>>) -> Self {
        let session = {
            let p = proc.lock();
            MsrSession::open(p.msr_file(), &MsrSession::cuttlefish_allowlist())
        };
        SharedSimBackend {
            proc,
            session,
            last: None,
        }
    }
}

impl PowerBackend for SharedSimBackend {
    fn domains(&self) -> (FreqDomain, FreqDomain) {
        let p = self.proc.lock();
        (p.spec().core.clone(), p.spec().uncore.clone())
    }

    fn sample(&mut self) -> Option<Sample> {
        let p = self.proc.lock();
        let now = CounterSnapshot::capture(&p).ok()?;
        drop(p);
        let out = self.last.as_ref().and_then(|prev| delta(prev, &now));
        self.last = Some(now);
        out
    }

    fn set_frequencies(&mut self, cf: Freq, uf: Freq) {
        use simproc::msr::{MsrFile, IA32_PERF_CTL, MSR_UNCORE_RATIO_LIMIT};
        let mut p = self.proc.lock();
        let file = p.msr_file_mut();
        let _ = self
            .session
            .write(file, IA32_PERF_CTL, MsrFile::encode_perf_ctl(cf.0));
        let _ = self.session.write(
            file,
            MSR_UNCORE_RATIO_LIMIT,
            MsrFile::encode_uncore_limit(uf.0, uf.0),
        );
    }

    fn restore(&mut self) {
        let mut p = self.proc.lock();
        self.session.restore(p.msr_file_mut());
    }
}

/// Convenience: the full Cuttlefish allow-list (re-exported so callers
/// building their own sessions don't reach into `simproc::msr`).
pub fn cuttlefish_allowlist() -> Vec<(u32, Access)> {
    MsrSession::cuttlefish_allowlist()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simproc::engine::{Chunk, Workload};
    use simproc::freq::HASWELL_2650V3;

    struct Steady;
    impl Workload for Steady {
        fn next_chunk(&mut self, _c: usize, _t: u64) -> Option<Chunk> {
            Some(Chunk::new(1_000_000, 10_000, 3_000))
        }
        fn is_done(&self) -> bool {
            false
        }
    }

    #[test]
    fn shared_backend_samples_and_sets() {
        let proc = Arc::new(parking_lot::Mutex::new(SimProcessor::new(
            HASWELL_2650V3.clone(),
        )));
        let mut backend = SharedSimBackend::new(proc.clone());

        // First sample call establishes the baseline.
        assert!(backend.sample().is_none());

        // Advance virtual time.
        {
            let mut p = proc.lock();
            let mut wl = Steady;
            for _ in 0..20 {
                p.step(&mut wl);
            }
        }
        let s = backend.sample().expect("20 quanta of activity");
        assert!(s.tipi > 0.0 && s.jpi > 0.0);

        backend.set_frequencies(Freq(15), Freq(20));
        {
            let mut p = proc.lock();
            let mut wl = Steady;
            p.step(&mut wl);
            assert_eq!(p.core_freq(), Freq(15));
            assert_eq!(p.uncore_freq(), Freq(20));
        }

        backend.restore();
        {
            let mut p = proc.lock();
            let mut wl = Steady;
            p.step(&mut wl);
            assert_eq!(p.core_freq(), Freq(23), "restore puts controls back");
            assert_eq!(p.uncore_freq(), Freq(30));
        }
    }

    #[test]
    fn domains_match_machine() {
        let proc = Arc::new(parking_lot::Mutex::new(SimProcessor::new(
            HASWELL_2650V3.clone(),
        )));
        let backend = SharedSimBackend::new(proc);
        let (c, u) = backend.domains();
        assert_eq!(c.len(), 12);
        assert_eq!(u.len(), 19);
    }
}
