//! Daemon and client front end for the serve protocol.
//!
//! ```text
//! cuttlefish-serve serve    [--addr A] [--store PATH] [--workers N] [--port-file P]
//! cuttlefish-serve submit   FILE [--addr A] [--wait] [--json OUT]
//! cuttlefish-serve watch    JOB  [--addr A]
//! cuttlefish-serve status   JOB  [--addr A]
//! cuttlefish-serve result   JOB  [--addr A] [--json OUT]
//! cuttlefish-serve stats    [--addr A] [--require-all-hits]
//! cuttlefish-serve shutdown [--addr A]
//! ```
//!
//! `serve` runs the daemon in the foreground until a `shutdown`
//! request drains it (exit 0). `--port-file` writes the bound address
//! (atomically) once listening — how ci.sh finds an ephemeral port.
//! The store root resolves like the grid bins (`--store`, else
//! `CUTTLEFISH_STORE`, else `target/cuttlefish-store`); the address
//! resolves from `--addr`, else `CUTTLEFISH_SERVE_ADDR`, else
//! `127.0.0.1:53013`.
//!
//! `submit` posts a scenario (`cuttlefish/scenario/v1`) or cell-key
//! (`cuttlefish/cell-key/v1`) JSON file. `--wait` follows the event
//! stream to completion; `--json OUT` (implies `--wait`) additionally
//! writes the artifact — byte-identical to the grid path's artifact
//! for the same cell. `stats --require-all-hits` exits non-zero
//! unless every job so far was served from the store (the ci.sh
//! warm-smoke gate).

use serve::protocol::{decode, EventKind, JobEvent, Submission};
use serve::{resolve_addr, Client, Server};
use std::path::PathBuf;

const USAGE: &str = "cuttlefish-serve <serve|submit|watch|status|result|stats|shutdown> \
                     [FILE|JOB] [--addr A] [--store PATH] [--workers N] [--port-file P] \
                     [--wait] [--json OUT] [--require-all-hits]";

struct Args {
    command: String,
    operand: Option<String>,
    addr: Option<String>,
    store: Option<PathBuf>,
    workers: usize,
    port_file: Option<PathBuf>,
    wait: bool,
    json: Option<PathBuf>,
    require_all_hits: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        command: String::new(),
        operand: None,
        addr: None,
        store: None,
        workers: std::thread::available_parallelism().map_or(1, usize::from),
        port_file: None,
        wait: false,
        json: None,
        require_all_hits: false,
    };
    let mut argv = std::env::args().skip(1);
    let value = |argv: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        argv.next()
            .unwrap_or_else(|| die(&format!("{flag} needs a value")))
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--addr" => args.addr = Some(value(&mut argv, "--addr")),
            "--store" => args.store = Some(PathBuf::from(value(&mut argv, "--store"))),
            "--workers" => {
                args.workers = value(&mut argv, "--workers")
                    .parse()
                    .unwrap_or_else(|_| die("--workers needs a positive integer"))
            }
            "--port-file" => args.port_file = Some(PathBuf::from(value(&mut argv, "--port-file"))),
            "--wait" => args.wait = true,
            "--json" => {
                args.json = Some(PathBuf::from(value(&mut argv, "--json")));
                args.wait = true;
            }
            "--require-all-hits" => args.require_all_hits = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            _ if args.command.is_empty() => args.command = arg,
            _ if args.operand.is_none() => args.operand = Some(arg),
            other => die(&format!("unexpected argument `{other}`")),
        }
    }
    if args.command.is_empty() {
        die("missing command");
    }
    args
}

fn main() {
    let args = parse_args();
    let client = || Client::new(resolve_addr(args.addr.clone()));
    let operand = |what: &str| -> &str {
        args.operand
            .as_deref()
            .unwrap_or_else(|| die(&format!("{} needs {what}", args.command)))
    };
    match args.command.as_str() {
        "serve" => serve_daemon(&args),
        "submit" => submit(
            &client(),
            operand("a scenario or cell-key JSON file"),
            &args,
        ),
        "watch" => {
            let events = client()
                .watch(operand("a job id"), |e| println!("{}", render_event(e)))
                .unwrap_or_else(|e| die(&e));
            let _ = events;
        }
        "status" => {
            let ticket = client()
                .status(operand("a job id"))
                .unwrap_or_else(|e| die(&e));
            println!("{} {}", ticket.job, ticket.state.as_str());
        }
        "result" => {
            let artifact = client()
                .result(operand("a job id"))
                .unwrap_or_else(|e| die(&e));
            emit_artifact(&artifact.to_pretty(), args.json.as_deref());
        }
        "stats" => stats(&client(), args.require_all_hits),
        "shutdown" => {
            let drained = client().shutdown().unwrap_or_else(|e| die(&e));
            println!("daemon drained {drained} in-flight job(s) and stopped");
        }
        other => die(&format!("unknown command `{other}`")),
    }
}

fn serve_daemon(args: &Args) {
    let store = bench::store::Store::open(bench::store::resolve_root(args.store.clone()));
    let addr = resolve_addr(args.addr.clone());
    let server = Server::bind(&addr, store.clone(), args.workers)
        .unwrap_or_else(|e| die(&format!("bind {addr}: {e}")));
    let bound = server.local_addr();
    println!(
        "cuttlefish-serve listening on {bound} (store {}, cv {}, {} worker(s))",
        store.root().display(),
        store.code_version(),
        args.workers.max(1)
    );
    if let Some(path) = &args.port_file {
        // Atomic write: a poller never reads a half-written address.
        let tmp = path.with_extension("tmp");
        let write =
            std::fs::write(&tmp, format!("{bound}\n")).and_then(|()| std::fs::rename(&tmp, path));
        write.unwrap_or_else(|e| die(&format!("write {}: {e}", path.display())));
    }
    server.run().unwrap_or_else(|e| die(&format!("serve: {e}")));
}

fn submit(client: &Client, file: &str, args: &Args) {
    let text = std::fs::read_to_string(file).unwrap_or_else(|e| die(&format!("read {file}: {e}")));
    let submission: Submission = decode(&text).unwrap_or_else(|e| die(&format!("{file}: {}", e.0)));
    let ticket = client.submit(submission).unwrap_or_else(|e| die(&e));
    println!(
        "job {} {}{}",
        ticket.job,
        ticket.state.as_str(),
        if ticket.coalesced { " (coalesced)" } else { "" }
    );
    if !args.wait {
        return;
    }
    client
        .watch(&ticket.job, |e| println!("{}", render_event(e)))
        .unwrap_or_else(|e| die(&e));
    if args.json.is_some() {
        let artifact = client.result(&ticket.job).unwrap_or_else(|e| die(&e));
        emit_artifact(&artifact.to_pretty(), args.json.as_deref());
    }
}

fn stats(client: &Client, require_all_hits: bool) {
    let s = client.stats().unwrap_or_else(|e| die(&e));
    println!(
        "jobs {} (submits {}, coalesced {}) hits {} misses {} in-flight {} wall saved {:.1} ms",
        s.jobs, s.submits, s.coalesced, s.hits, s.misses, s.in_flight, s.wall_ms_saved
    );
    println!(
        "store: {} entries ({} bytes, {} corrupt), {} code version(s), {:.0}% hint coverage",
        s.store.entries,
        s.store.bytes,
        s.store.corrupt,
        s.store.code_versions,
        s.store.hint_coverage * 100.0
    );
    if require_all_hits && (s.hits == 0 || s.misses != 0 || s.in_flight != 0) {
        eprintln!(
            "error: --require-all-hits wants every settled job warm \
             (hits {} / misses {} / in-flight {})",
            s.hits, s.misses, s.in_flight
        );
        std::process::exit(1);
    }
}

fn render_event(e: &JobEvent) -> String {
    let mut line = format!("{} {}", e.job, e.kind.as_str());
    if let Some(wall_ms) = e.wall_ms {
        line.push_str(&format!(" wall={wall_ms:.1}ms"));
    }
    if let Some([stepped, idle, busy, total]) = e.quanta {
        line.push_str(&format!(" quanta={stepped}+{idle}+{busy}/{total}"));
    }
    if e.kind == EventKind::Hit {
        line.push_str(" (no simulation)");
    }
    line
}

fn emit_artifact(pretty: &str, out: Option<&std::path::Path>) {
    match out {
        Some(path) => {
            std::fs::write(path, pretty)
                .unwrap_or_else(|e| die(&format!("write {}: {e}", path.display())));
            println!("wrote {}", path.display());
        }
        None => print!("{pretty}"),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    std::process::exit(2);
}
