//! `cuttlefish-serve`: a scenario-submission daemon over the
//! content-addressed result store.
//!
//! The batch bins answer "run this grid"; this crate answers "keep
//! answering scenario submissions". A long-running TCP daemon accepts
//! [`Scenario`](bench::scenario::Scenario) (or declarative cell-key)
//! submissions over a newline-delimited deterministic JSON protocol
//! ([`protocol`], schema `cuttlefish/serve/v1`), keys every submission
//! by the store's [`CellKey`](bench::store::CellKey), and:
//!
//! * serves **warm** keys straight from the store — no simulator run,
//!   the artifact bytes replay digest-verified;
//! * **coalesces** duplicate in-flight submissions onto one
//!   computation — a million submissions of one scenario cost one run;
//! * dispatches **misses** LPT-first off the store's wall-clock hints
//!   onto a worker pool, and commits every computed cell back, so the
//!   daemon and the batch bins share one cache.
//!
//! The dispatch discipline is the grid runner's
//! ([`GridSpec::run_timed_store`](bench::grid::GridSpec::run_timed_store)):
//! longest-estimated-first, unknown costs first, first-submitted on
//! ties. The grid sorts its whole (static) queue once and feeds a FIFO;
//! the daemon's queue is live, so each worker instead picks the current
//! maximum under the job-table lock — same order, dynamic arrivals.
//!
//! Progress is streamed as typed events (`queued → hit|running →
//! committed → done`, with the quanta-split counters and wall-clock),
//! mirroring RCRtool-style always-on telemetry rather than one-shot
//! batch reports. A [`client`] in the same crate drives the daemon for
//! tests, ci.sh, and humans alike; the `cuttlefish-serve` binary fronts
//! both halves. See `docs/SERVE.md` for the wire format.

pub mod client;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use protocol::{
    EventKind, JobEvent, JobState, JobTicket, Request, Response, ServeStats, Submission,
    SERVE_SCHEMA,
};
pub use server::Server;

/// Default daemon address (overridable via `--addr` and the
/// `CUTTLEFISH_SERVE_ADDR` environment variable).
pub const DEFAULT_ADDR: &str = "127.0.0.1:53013";

/// Resolve the daemon address: explicit flag value, else the
/// `CUTTLEFISH_SERVE_ADDR` environment variable, else [`DEFAULT_ADDR`].
pub fn resolve_addr(flag: Option<String>) -> String {
    flag.or_else(|| std::env::var("CUTTLEFISH_SERVE_ADDR").ok())
        .unwrap_or_else(|| DEFAULT_ADDR.to_string())
}
