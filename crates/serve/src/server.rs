//! The daemon: job table, store probe, LPT worker pool, and the
//! one-request-per-connection TCP front end.
//!
//! Every submission lowers to `(machine, scale, cell)` and keys by the
//! store's `CellKey`, which makes coalescing a hash-map lookup: the
//! first submission of a key creates the job, every later one joins
//! it. The job then takes one of two paths under the same lock
//! discipline as the grid runner's cache:
//!
//! * **hit** — the store probe (outside the lock; it is disk I/O)
//!   replays a digest-verified entry: no simulation, events
//!   `queued → hit → done`;
//! * **miss** — the job enters the live LPT queue at its wall-clock
//!   hint (unknown costs first, at `+inf`), a worker computes it via
//!   the exact grid cell path ([`run_cell_timed`]), commits the entry
//!   back, and settles it: events `queued → running → committed →
//!   done`.
//!
//! Shutdown is graceful by construction: `draining` refuses new
//! submissions while the workers run the queue dry, then `stopped`
//! wakes every waiter and the acceptor exits.

use crate::protocol::{
    decode, read_msg, write_msg, EventKind, JobEvent, JobState, JobTicket, Request, Response,
    ServeStats, Submission,
};
use bench::grid::{run_cell_timed, CellResult, CellSpec, GridResult};
use bench::json::{Json, ToJson};
use bench::store::{CellKey, Store};
use simproc::freq::MachineSpec;
use std::collections::HashMap;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// How long a connection may sit idle before its request line is
/// abandoned — keeps a silent client from pinning a handler thread
/// (and the final join) forever.
const REQUEST_TIMEOUT: Duration = Duration::from_secs(10);

/// One registered job. Jobs are never removed: the table is the
/// daemon's memory of every key it has answered, and `done` jobs are
/// what make repeat submissions instant.
struct JobRec {
    key: CellKey,
    machine: MachineSpec,
    scale: f64,
    cell: CellSpec,
    /// LPT priority: the store's wall-clock hint, `+inf` when unknown.
    est_ms: f64,
    state: JobState,
    events: Vec<JobEvent>,
    /// The one-cell grid artifact, shared by every reader.
    artifact: Option<Arc<Json>>,
    /// Compute wall-clock this job represents (the committing run's
    /// for a hit) — what each coalesced duplicate saves.
    compute_wall_ms: Option<f64>,
    /// Duplicates that joined before the job settled; their savings
    /// are credited when it does.
    pending_coalesced: u64,
}

#[derive(Default)]
struct Inner {
    jobs: Vec<JobRec>,
    by_key: HashMap<u64, usize>,
    /// Indices of queued jobs; workers pop the current cost maximum.
    queue: Vec<usize>,
    /// Jobs currently executing on a worker.
    running: usize,
    /// Jobs registered but still probing the store (the probe runs
    /// outside the lock; the drain must wait for them).
    probing: usize,
    submits: u64,
    coalesced: u64,
    hits: u64,
    misses: u64,
    wall_ms_saved: f64,
    draining: bool,
    stopped: bool,
}

struct Shared {
    store: Store,
    addr: SocketAddr,
    inner: Mutex<Inner>,
    cond: Condvar,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn wait<'a>(&self, guard: MutexGuard<'a, Inner>) -> MutexGuard<'a, Inner> {
        self.cond
            .wait(guard)
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// A bound, not-yet-running daemon. [`Server::run`] blocks until a
/// `shutdown` request drains it; spawn it on a thread to drive it
/// in-process (the e2e tests do).
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    workers: usize,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) over
    /// `store` with a pool of `workers` compute threads (min 1).
    pub fn bind(addr: &str, store: Store, workers: usize) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                store,
                addr,
                inner: Mutex::new(Inner::default()),
                cond: Condvar::new(),
            }),
            workers: workers.max(1),
        })
    }

    /// The bound address (the actual port when bound ephemeral).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Serve until a `shutdown` request completes its drain. Joins
    /// every worker and connection thread before returning, so a
    /// clean return means nothing is left running.
    pub fn run(self) -> io::Result<()> {
        let workers: Vec<_> = (0..self.workers)
            .map(|_| {
                let shared = Arc::clone(&self.shared);
                std::thread::spawn(move || worker(&shared))
            })
            .collect();
        let mut conns = Vec::new();
        for stream in self.listener.incoming() {
            if self.shared.lock().stopped {
                break;
            }
            let Ok(stream) = stream else { continue };
            let shared = Arc::clone(&self.shared);
            conns.push(std::thread::spawn(move || handle_conn(&shared, stream)));
        }
        for conn in conns {
            let _ = conn.join();
        }
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

/// The one-cell grid artifact of `result` — byte-for-byte what
/// [`bench::grid::run_scenario_timed`] produces for the same cell
/// (`scenario_cell` preserves the label, and the store replays
/// results bit-exactly).
fn artifact(result: CellResult, scale: f64, machine: &MachineSpec) -> Json {
    GridResult {
        grid: format!("scenario:{}", result.spec.label),
        scale,
        machine: machine.name.clone(),
        cells: vec![result],
    }
    .to_json()
}

fn push_event(job: &mut JobRec, kind: EventKind, wall_ms: Option<f64>, quanta: Option<[u64; 4]>) {
    job.events.push(JobEvent {
        job: job.key.hex(),
        kind,
        wall_ms,
        quanta,
    });
}

/// Register/join the job for one submission. The store probe runs
/// outside the lock; `probing` keeps the drain honest while it does.
fn submit(shared: &Shared, submission: &Submission) -> Result<JobTicket, String> {
    let (machine, scale, cell) = submission.resolve()?;
    let key = shared.store.key(&cell.store_identity(&machine, scale));

    let mut inner = shared.lock();
    if inner.draining {
        return Err("daemon is draining; new submissions are refused".into());
    }
    inner.submits += 1;
    if let Some(&idx) = inner.by_key.get(&key.key_hash) {
        // Coalesce: same key, same job — the second submission of a
        // cell never costs a second computation.
        inner.coalesced += 1;
        let settled = inner.jobs[idx].compute_wall_ms;
        match settled {
            Some(wall_ms) => inner.wall_ms_saved += wall_ms,
            None => inner.jobs[idx].pending_coalesced += 1,
        }
        return Ok(JobTicket {
            job: key.hex(),
            state: inner.jobs[idx].state,
            coalesced: true,
        });
    }
    let idx = inner.jobs.len();
    inner.jobs.push(JobRec {
        key,
        machine: machine.clone(),
        scale,
        cell,
        est_ms: f64::INFINITY,
        state: JobState::Queued,
        events: Vec::new(),
        artifact: None,
        compute_wall_ms: None,
        pending_coalesced: 0,
    });
    inner.by_key.insert(key.key_hash, idx);
    push_event(&mut inner.jobs[idx], EventKind::Queued, None, None);
    inner.probing += 1;
    drop(inner);

    let probe = shared.store.load(&key);
    let est_ms = match &probe {
        Some(_) => 0.0,
        None => shared.store.wall_hint(&key).unwrap_or(f64::INFINITY),
    };

    let mut inner = shared.lock();
    inner.probing -= 1;
    let state = match probe {
        Some(entry) => {
            // Warm key: replay the committed entry — the simulator
            // never runs.
            inner.hits += 1;
            let doc = artifact(entry.result, scale, &machine);
            let job = &mut inner.jobs[idx];
            push_event(job, EventKind::Hit, Some(entry.wall_ms), Some(entry.quanta));
            push_event(job, EventKind::Done, None, None);
            job.artifact = Some(Arc::new(doc));
            job.compute_wall_ms = Some(entry.wall_ms);
            job.state = JobState::Done;
            let joined = std::mem::take(&mut job.pending_coalesced);
            inner.wall_ms_saved += entry.wall_ms * (1 + joined) as f64;
            JobState::Done
        }
        None => {
            inner.misses += 1;
            inner.jobs[idx].est_ms = est_ms;
            inner.queue.push(idx);
            JobState::Queued
        }
    };
    shared.cond.notify_all();
    Ok(JobTicket {
        job: key.hex(),
        state,
        coalesced: false,
    })
}

/// Pop the queued job with the largest cost estimate — live LPT, the
/// grid runner's dispatch order under dynamic arrivals. Strict `>`
/// keeps the scan stable: ties (and the all-`+inf` cold case) go to
/// the first-submitted job.
fn pop_lpt(inner: &mut Inner) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (pos, &job) in inner.queue.iter().enumerate() {
        if best.is_none_or(|b| inner.jobs[job].est_ms > inner.jobs[inner.queue[b]].est_ms) {
            best = Some(pos);
        }
    }
    best.map(|pos| inner.queue.remove(pos))
}

fn worker(shared: &Shared) {
    loop {
        let (idx, machine, scale, cell, key) = {
            let mut inner = shared.lock();
            loop {
                if inner.stopped {
                    return;
                }
                if let Some(idx) = pop_lpt(&mut inner) {
                    inner.running += 1;
                    let job = &mut inner.jobs[idx];
                    job.state = JobState::Running;
                    push_event(job, EventKind::Running, None, None);
                    shared.cond.notify_all();
                    let job = &inner.jobs[idx];
                    break (
                        idx,
                        job.machine.clone(),
                        job.scale,
                        job.cell.clone(),
                        job.key,
                    );
                }
                // Queue dry while draining: no submission can refill
                // it (probes in flight may still, so wait those out).
                if inner.draining && inner.probing == 0 {
                    return;
                }
                inner = shared.wait(inner);
            }
        };

        // The actual simulation — the exact grid cell path — runs
        // with no lock held.
        let (result, timing) = run_cell_timed(&machine, scale, &cell);
        let committed = match shared.store.commit(&key, &result, &timing) {
            Ok(()) => true,
            Err(e) => {
                // A full store is a perf bug, not a result bug: warn
                // and serve the computed artifact uncached.
                eprintln!(
                    "warning: store commit failed for {} ({e}); continuing uncached",
                    key.hex()
                );
                false
            }
        };

        let doc = artifact(result, scale, &machine);
        let mut inner = shared.lock();
        inner.running -= 1;
        let job = &mut inner.jobs[idx];
        if committed {
            push_event(
                job,
                EventKind::Committed,
                Some(timing.wall_ms),
                Some([
                    timing.stepped_quanta,
                    timing.idle_advanced_quanta,
                    timing.busy_advanced_quanta,
                    timing.total_quanta,
                ]),
            );
        }
        push_event(job, EventKind::Done, None, None);
        job.artifact = Some(Arc::new(doc));
        job.compute_wall_ms = Some(timing.wall_ms);
        job.state = JobState::Done;
        let joined = std::mem::take(&mut job.pending_coalesced);
        inner.wall_ms_saved += timing.wall_ms * joined as f64;
        shared.cond.notify_all();
    }
}

fn lookup(inner: &Inner, job: &str) -> Result<usize, String> {
    u64::from_str_radix(job, 16)
        .ok()
        .and_then(|key| inner.by_key.get(&key).copied())
        .ok_or_else(|| format!("unknown job `{job}`"))
}

fn handle_conn(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(REQUEST_TIMEOUT));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let line = match read_msg(&mut reader) {
        Ok(Some(line)) => line,
        Ok(None) | Err(_) => return,
    };
    let request = match decode::<Request>(&line) {
        Ok(request) => request,
        Err(e) => {
            let _ = write_msg(&mut writer, &Response::Error { error: e.0 });
            return;
        }
    };
    let response = match request {
        Request::Submit(submission) => match submit(shared, &submission) {
            Ok(ticket) => Response::Job(ticket),
            Err(error) => Response::Error { error },
        },
        Request::Status { job } => {
            let inner = shared.lock();
            match lookup(&inner, &job) {
                Ok(idx) => Response::Job(JobTicket {
                    job,
                    state: inner.jobs[idx].state,
                    coalesced: false,
                }),
                Err(error) => Response::Error { error },
            }
        }
        Request::Watch { job } => {
            watch(shared, &mut writer, &job);
            return;
        }
        Request::Result { job } => result(shared, &job),
        Request::Stats => Response::Stats(stats(shared)),
        Request::Shutdown => Response::Shutdown {
            drained: shutdown(shared),
        },
    };
    let _ = write_msg(&mut writer, &response);
}

/// Stream the job's events from the beginning and keep following until
/// its terminal `done` event has been delivered.
fn watch(shared: &Shared, writer: &mut TcpStream, job: &str) {
    let idx = {
        let inner = shared.lock();
        match lookup(&inner, job) {
            Ok(idx) => idx,
            Err(error) => {
                let _ = write_msg(writer, &Response::Error { error });
                return;
            }
        }
    };
    let mut cursor = 0;
    loop {
        let (batch, finished) = {
            let mut inner = shared.lock();
            loop {
                let events = &inner.jobs[idx].events;
                if events.len() > cursor {
                    let batch: Vec<JobEvent> = events[cursor..].to_vec();
                    cursor = events.len();
                    let finished = batch.iter().any(|e| e.kind == EventKind::Done);
                    break (batch, finished);
                }
                if inner.stopped {
                    return;
                }
                inner = shared.wait(inner);
            }
        };
        for event in batch {
            if write_msg(writer, &Response::Event(event)).is_err() {
                return;
            }
        }
        if finished {
            return;
        }
    }
}

/// Block until the job settles, then answer with its artifact.
fn result(shared: &Shared, job: &str) -> Response {
    let mut inner = shared.lock();
    let idx = match lookup(&inner, job) {
        Ok(idx) => idx,
        Err(error) => return Response::Error { error },
    };
    loop {
        if let Some(doc) = &inner.jobs[idx].artifact {
            return Response::Artifact {
                job: job.to_string(),
                artifact: (**doc).clone(),
            };
        }
        if inner.stopped {
            return Response::Error {
                error: format!("daemon stopped before job `{job}` settled"),
            };
        }
        inner = shared.wait(inner);
    }
}

fn stats(shared: &Shared) -> ServeStats {
    // The store sweep is disk I/O: take it before the lock.
    let store = shared.store.stats();
    let inner = shared.lock();
    ServeStats {
        jobs: inner.jobs.len() as u64,
        submits: inner.submits,
        coalesced: inner.coalesced,
        hits: inner.hits,
        misses: inner.misses,
        in_flight: inner
            .jobs
            .iter()
            .filter(|j| j.state != JobState::Done)
            .count() as u64,
        wall_ms_saved: inner.wall_ms_saved,
        store,
    }
}

/// Drain and stop: refuse new submissions, wait for the queue, the
/// probes, and the running jobs to finish, then wake everything and
/// unblock the acceptor. Returns how many jobs were in flight when
/// the drain began. Idempotent — concurrent shutdowns all wait for
/// the same drain.
fn shutdown(shared: &Shared) -> u64 {
    let mut inner = shared.lock();
    inner.draining = true;
    let drained = inner
        .jobs
        .iter()
        .filter(|j| j.state != JobState::Done)
        .count() as u64;
    shared.cond.notify_all();
    while !(inner.queue.is_empty() && inner.running == 0 && inner.probing == 0) {
        inner = shared.wait(inner);
    }
    inner.stopped = true;
    shared.cond.notify_all();
    let addr = shared.addr;
    drop(inner);
    // Nudge the acceptor out of `accept()`; it re-checks `stopped`.
    let _ = TcpStream::connect(addr);
    drained
}
