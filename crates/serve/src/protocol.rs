//! The `cuttlefish/serve/v1` wire protocol: typed requests, responses,
//! and progress events, all carried as one [`Json::to_compact`] line
//! per message (newline-delimited). The codec is `bench::json`, so
//! every message is deterministic and round-trips byte-exactly —
//! the same discipline as the scenario files and grid artifacts.
//!
//! A connection carries exactly one request and its response(s):
//! every response is a single line except `watch`, which streams one
//! `event` line per job event and ends after `done`. `docs/SERVE.md`
//! specifies the format with examples; `tests/protocol_doc.rs` decodes
//! every one of them through this module.

use bench::grid::{scenario_cell, CellSpec, CELL_KEY_SCHEMA};
use bench::json::{FromJson, Json, JsonError, ToJson};
use bench::scenario::{obj, Scenario, SCENARIO_SCHEMA};
use bench::store::StoreStats;
use bench::Setup;
use simproc::freq::MachineSpec;
use std::io::{self, BufRead, Write};
use workloads::WorkloadSpec;

/// Format tag carried by every request and response.
pub const SERVE_SCHEMA: &str = "cuttlefish/serve/v1";

fn num(n: u64) -> Json {
    debug_assert!(n < (1 << 53), "counter exceeds exact JSON transport");
    Json::Num(n as f64)
}

/// What a `submit` request carries: either a full scenario file or the
/// declarative cell-key document ([`CellSpec::store_identity`]) — the
/// two submission schemas the batch bins already accept.
#[derive(Debug, Clone, PartialEq)]
pub enum Submission {
    /// A `cuttlefish/scenario/v1` document.
    Scenario(Box<Scenario>),
    /// A `cuttlefish/cell-key/v1` document: machine × scale × cell.
    Cell(Box<CellSubmission>),
}

/// The declarative form: a grid cell in its grid context.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSubmission {
    /// Uniform machine (per-node overrides live in the cell).
    pub machine: MachineSpec,
    /// Workload scale.
    pub scale: f64,
    /// The cell proper.
    pub cell: CellSpec,
}

impl Submission {
    /// Validate and lower to the store-addressable triple every job is
    /// keyed and executed by. Rejects anything the cell format cannot
    /// express (the daemon only accepts submissions it can memoize —
    /// the same constraint as the bins' `--scenario` path with a
    /// store attached).
    pub fn resolve(&self) -> Result<(MachineSpec, f64, CellSpec), String> {
        match self {
            Submission::Scenario(scenario) => {
                scenario.validate()?;
                let cell = scenario_cell(scenario)?;
                Ok((scenario.nodes[0].0.clone(), scenario.workload.scale(), cell))
            }
            Submission::Cell(sub) => {
                sub.validate()?;
                Ok((sub.machine.clone(), sub.scale, sub.cell.clone()))
            }
        }
    }
}

impl CellSubmission {
    /// Check everything [`CellSpec::scenario`] would otherwise assert
    /// (a malformed submission must be a protocol error, not a worker
    /// panic) without expanding the cell — expansion of a
    /// derived-oracle cell runs a trace probe, which belongs on the
    /// worker pool, not in the submit handler.
    fn validate(&self) -> Result<(), String> {
        self.machine.validate()?;
        if !(self.scale.is_finite() && self.scale > 0.0) {
            return Err(format!("invalid workload scale {}", self.scale));
        }
        let cell = &self.cell;
        if cell.nodes == 0 {
            return Err("cell must have at least one node".into());
        }
        if let Some(machines) = &cell.machines {
            if cell.nodes < 2 || machines.len() != cell.nodes {
                return Err(
                    "heterogeneous cells need one machine per node of a multi-node cell".into(),
                );
            }
            for m in machines {
                m.validate()?;
            }
            if machines
                .iter()
                .any(|m| m.quantum_ns != machines[0].quantum_ns)
            {
                return Err("all nodes must share one quantum_ns".into());
            }
        }
        if cell.setup == Setup::Oracle && cell.oracle.is_none() && cell.nodes != 1 {
            return Err(
                "oracle tables are derived from single-node Default traces; \
                 multi-node oracle cells need an explicit table"
                    .into(),
            );
        }
        // Resolves the benchmark name/model against the suite — the
        // same check `Scenario::validate` applies.
        WorkloadSpec::Bench {
            name: cell.bench.clone(),
            model: cell.model,
            scale: self.scale,
        }
        .resolve()?;
        Ok(())
    }
}

impl ToJson for Submission {
    fn to_json(&self) -> Json {
        match self {
            Submission::Scenario(s) => s.to_json(),
            Submission::Cell(sub) => obj(vec![
                ("schema", Json::Str(CELL_KEY_SCHEMA.into())),
                ("machine", sub.machine.to_json()),
                ("scale", Json::Num(sub.scale)),
                ("cell", sub.cell.to_json()),
            ]),
        }
    }
}

impl FromJson for Submission {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        match j.field("schema")?.as_str()? {
            SCENARIO_SCHEMA => Ok(Submission::Scenario(Box::new(Scenario::from_json(j)?))),
            CELL_KEY_SCHEMA => Ok(Submission::Cell(Box::new(CellSubmission {
                machine: MachineSpec::from_json(j.field("machine")?)?,
                scale: j.field("scale")?.as_f64()?,
                cell: CellSpec::from_json(j.field("cell")?)?,
            }))),
            other => Err(JsonError(format!(
                "unsupported submission schema `{other}` \
                 (expected `{SCENARIO_SCHEMA}` or `{CELL_KEY_SCHEMA}`)"
            ))),
        }
    }
}

/// One client request. A connection carries exactly one.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Enqueue (or join) a job; answered with a [`JobTicket`].
    Submit(Submission),
    /// Current state of a job; answered with a [`JobTicket`].
    Status {
        /// Job id (16 hex digits — the store key).
        job: String,
    },
    /// Stream the job's events from the beginning; one `event` line
    /// each, ending after `done`.
    Watch {
        /// Job id.
        job: String,
    },
    /// Block until the job settles, then return its artifact.
    Result {
        /// Job id.
        job: String,
    },
    /// Daemon counters plus the store's aggregate shape.
    Stats,
    /// Refuse new submissions, drain in-flight jobs, then exit.
    Shutdown,
}

impl ToJson for Request {
    fn to_json(&self) -> Json {
        let mut fields = vec![("schema", Json::Str(SERVE_SCHEMA.into()))];
        match self {
            Request::Submit(payload) => {
                fields.push(("req", Json::Str("submit".into())));
                fields.push(("payload", payload.to_json()));
            }
            Request::Status { job } => {
                fields.push(("req", Json::Str("status".into())));
                fields.push(("job", Json::Str(job.clone())));
            }
            Request::Watch { job } => {
                fields.push(("req", Json::Str("watch".into())));
                fields.push(("job", Json::Str(job.clone())));
            }
            Request::Result { job } => {
                fields.push(("req", Json::Str("result".into())));
                fields.push(("job", Json::Str(job.clone())));
            }
            Request::Stats => fields.push(("req", Json::Str("stats".into()))),
            Request::Shutdown => fields.push(("req", Json::Str("shutdown".into()))),
        }
        obj(fields)
    }
}

impl FromJson for Request {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        check_schema(j)?;
        let job = |j: &Json| -> Result<String, JsonError> {
            let job = j.field("job")?.as_str()?;
            if job.len() != 16 || !job.chars().all(|c| c.is_ascii_hexdigit()) {
                return Err(JsonError(format!(
                    "job id `{job}` is not 16 hex digits (a store key)"
                )));
            }
            Ok(job.to_string())
        };
        match j.field("req")?.as_str()? {
            "submit" => Ok(Request::Submit(Submission::from_json(j.field("payload")?)?)),
            "status" => Ok(Request::Status { job: job(j)? }),
            "watch" => Ok(Request::Watch { job: job(j)? }),
            "result" => Ok(Request::Result { job: job(j)? }),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(JsonError(format!("unknown request `{other}`"))),
        }
    }
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Registered; probing the store or waiting in the LPT queue.
    Queued,
    /// Executing on a worker.
    Running,
    /// Artifact available (store hit or computed-and-committed).
    Done,
}

impl JobState {
    /// Wire spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
        }
    }

    fn parse(s: &str) -> Result<JobState, JsonError> {
        match s {
            "queued" => Ok(JobState::Queued),
            "running" => Ok(JobState::Running),
            "done" => Ok(JobState::Done),
            other => Err(JsonError(format!("unknown job state `{other}`"))),
        }
    }
}

/// What `submit`/`status` answer: the job's id and where it stands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobTicket {
    /// Job id (16 hex digits — the store key, so identical
    /// submissions get identical ids).
    pub job: String,
    /// Current lifecycle state.
    pub state: JobState,
    /// Whether this submission joined an already-known job instead of
    /// creating one.
    pub coalesced: bool,
}

/// A job's progress milestones, in order: `queued`, then either `hit`
/// (warm store — no simulation) or `running` → `committed`, then
/// `done`. `hit` and `committed` carry the compute wall-clock and the
/// quanta-split counters of the (original) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Registered in the job table.
    Queued,
    /// Served from the store without running the simulator.
    Hit,
    /// Picked by a worker; simulation started.
    Running,
    /// Computed and committed back to the store.
    Committed,
    /// Artifact available; terminal.
    Done,
}

impl EventKind {
    /// Wire spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            EventKind::Queued => "queued",
            EventKind::Hit => "hit",
            EventKind::Running => "running",
            EventKind::Committed => "committed",
            EventKind::Done => "done",
        }
    }

    fn parse(s: &str) -> Result<EventKind, JsonError> {
        match s {
            "queued" => Ok(EventKind::Queued),
            "hit" => Ok(EventKind::Hit),
            "running" => Ok(EventKind::Running),
            "committed" => Ok(EventKind::Committed),
            "done" => Ok(EventKind::Done),
            other => Err(JsonError(format!("unknown event `{other}`"))),
        }
    }
}

/// One streamed progress event.
#[derive(Debug, Clone, PartialEq)]
pub struct JobEvent {
    /// Job id.
    pub job: String,
    /// Which milestone.
    pub kind: EventKind,
    /// Compute wall-clock, milliseconds — on `hit` (the committing
    /// run's) and `committed` (this run's).
    pub wall_ms: Option<f64>,
    /// `[stepped, idle_advanced, busy_advanced, total]` quanta — on
    /// `hit` and `committed`, same split as the store entries.
    pub quanta: Option<[u64; 4]>,
}

/// What `stats` answers: daemon counters plus the store's shape.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStats {
    /// Distinct jobs ever registered (one per distinct store key).
    pub jobs: u64,
    /// Total submissions accepted, including coalesced ones.
    pub submits: u64,
    /// Submissions that joined an existing job.
    pub coalesced: u64,
    /// Jobs served straight from the store.
    pub hits: u64,
    /// Jobs that had to compute.
    pub misses: u64,
    /// Jobs not yet done.
    pub in_flight: u64,
    /// Compute wall-clock avoided, milliseconds: the committing run's
    /// wall-clock for every hit, plus the job's compute wall-clock for
    /// every coalesced duplicate.
    pub wall_ms_saved: f64,
    /// The backing store's aggregate shape ([`bench::store::Store::stats`]).
    pub store: StoreStats,
}

/// One daemon response line. `watch` streams [`Response::Event`]s;
/// every other request is answered with exactly one line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to `submit`/`status`.
    Job(JobTicket),
    /// One `watch` stream element.
    Event(JobEvent),
    /// Answer to `result`: the job's one-cell grid artifact, embedded
    /// as a JSON value. Its pretty form is byte-identical to the
    /// artifact the batch bins write for the same cell.
    Artifact {
        /// Job id.
        job: String,
        /// The embedded `cuttlefish/grid-result/v1` document.
        artifact: Json,
    },
    /// Answer to `stats`.
    Stats(ServeStats),
    /// Answer to `shutdown`, sent after the drain completes.
    Shutdown {
        /// Jobs that were in flight when the drain began.
        drained: u64,
    },
    /// Any request that could not be honored.
    Error {
        /// Human-readable cause.
        error: String,
    },
}

impl ToJson for Response {
    fn to_json(&self) -> Json {
        let mut fields = vec![("schema", Json::Str(SERVE_SCHEMA.into()))];
        match self {
            Response::Job(t) => {
                fields.push(("resp", Json::Str("job".into())));
                fields.push(("job", Json::Str(t.job.clone())));
                fields.push(("state", Json::Str(t.state.as_str().into())));
                fields.push(("coalesced", Json::Bool(t.coalesced)));
            }
            Response::Event(e) => {
                fields.push(("resp", Json::Str("event".into())));
                fields.push(("job", Json::Str(e.job.clone())));
                fields.push(("event", Json::Str(e.kind.as_str().into())));
                if let Some(wall_ms) = e.wall_ms {
                    fields.push(("wall_ms", Json::Num(wall_ms)));
                }
                if let Some([stepped, idle, busy, total]) = e.quanta {
                    fields.push(("stepped_quanta", num(stepped)));
                    fields.push(("idle_advanced_quanta", num(idle)));
                    fields.push(("busy_advanced_quanta", num(busy)));
                    fields.push(("total_quanta", num(total)));
                }
            }
            Response::Artifact { job, artifact } => {
                fields.push(("resp", Json::Str("result".into())));
                fields.push(("job", Json::Str(job.clone())));
                fields.push(("artifact", artifact.clone()));
            }
            Response::Stats(s) => {
                fields.push(("resp", Json::Str("stats".into())));
                fields.push(("jobs", num(s.jobs)));
                fields.push(("submits", num(s.submits)));
                fields.push(("coalesced", num(s.coalesced)));
                fields.push(("hits", num(s.hits)));
                fields.push(("misses", num(s.misses)));
                fields.push(("in_flight", num(s.in_flight)));
                fields.push(("wall_ms_saved", Json::Num(s.wall_ms_saved)));
                fields.push(("store", s.store.to_json()));
            }
            Response::Shutdown { drained } => {
                fields.push(("resp", Json::Str("shutdown".into())));
                fields.push(("drained", num(*drained)));
            }
            Response::Error { error } => {
                fields.push(("resp", Json::Str("error".into())));
                fields.push(("error", Json::Str(error.clone())));
            }
        }
        obj(fields)
    }
}

impl FromJson for Response {
    fn from_json(j: &Json) -> Result<Self, JsonError> {
        check_schema(j)?;
        let job =
            |j: &Json| -> Result<String, JsonError> { Ok(j.field("job")?.as_str()?.to_string()) };
        match j.field("resp")?.as_str()? {
            "job" => Ok(Response::Job(JobTicket {
                job: job(j)?,
                state: JobState::parse(j.field("state")?.as_str()?)?,
                coalesced: j.field("coalesced")?.as_bool()?,
            })),
            "event" => {
                let quanta = match j.get("stepped_quanta") {
                    Some(stepped) => Some([
                        stepped.as_u64()?,
                        j.field("idle_advanced_quanta")?.as_u64()?,
                        j.field("busy_advanced_quanta")?.as_u64()?,
                        j.field("total_quanta")?.as_u64()?,
                    ]),
                    None => None,
                };
                Ok(Response::Event(JobEvent {
                    job: job(j)?,
                    kind: EventKind::parse(j.field("event")?.as_str()?)?,
                    wall_ms: j.get("wall_ms").map(Json::as_f64).transpose()?,
                    quanta,
                }))
            }
            "result" => Ok(Response::Artifact {
                job: job(j)?,
                artifact: j.field("artifact")?.clone(),
            }),
            "stats" => Ok(Response::Stats(ServeStats {
                jobs: j.field("jobs")?.as_u64()?,
                submits: j.field("submits")?.as_u64()?,
                coalesced: j.field("coalesced")?.as_u64()?,
                hits: j.field("hits")?.as_u64()?,
                misses: j.field("misses")?.as_u64()?,
                in_flight: j.field("in_flight")?.as_u64()?,
                wall_ms_saved: j.field("wall_ms_saved")?.as_f64()?,
                store: StoreStats::from_json(j.field("store")?)?,
            })),
            "shutdown" => Ok(Response::Shutdown {
                drained: j.field("drained")?.as_u64()?,
            }),
            "error" => Ok(Response::Error {
                error: j.field("error")?.as_str()?.to_string(),
            }),
            other => Err(JsonError(format!("unknown response `{other}`"))),
        }
    }
}

fn check_schema(j: &Json) -> Result<(), JsonError> {
    let schema = j.field("schema")?.as_str()?;
    if schema != SERVE_SCHEMA {
        return Err(JsonError(format!(
            "unsupported serve schema `{schema}` (expected `{SERVE_SCHEMA}`)"
        )));
    }
    Ok(())
}

/// Write one message as a single compact line.
pub fn write_msg<W: Write>(w: &mut W, msg: &impl ToJson) -> io::Result<()> {
    let mut line = msg.to_json().to_compact();
    line.push('\n');
    w.write_all(line.as_bytes())?;
    w.flush()
}

/// Read one newline-delimited message line; `Ok(None)` is clean EOF.
pub fn read_msg<R: BufRead>(r: &mut R) -> io::Result<Option<String>> {
    let mut line = String::new();
    match r.read_line(&mut line)? {
        0 => Ok(None),
        _ => Ok(Some(line)),
    }
}

/// Parse one message line into `T` (a [`Request`] or [`Response`]).
pub fn decode<T: FromJson>(line: &str) -> Result<T, JsonError> {
    T::from_json(&Json::parse(line)?)
}
