//! Client half of the protocol: one TCP connection per request,
//! typed responses. Tests, ci.sh, and the `cuttlefish-serve`
//! subcommands all drive the daemon through this one code path.

use crate::protocol::{
    decode, read_msg, write_msg, JobEvent, JobTicket, Request, Response, ServeStats, Submission,
};
use bench::json::Json;
use std::io::BufReader;
use std::net::TcpStream;

/// A handle on one daemon address. Connectionless: every call opens,
/// speaks, and closes (the protocol is one request per connection).
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
}

impl Client {
    /// Client for the daemon at `addr` (`host:port`).
    pub fn new(addr: impl Into<String>) -> Client {
        Client { addr: addr.into() }
    }

    /// The daemon address this client speaks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Open a connection and send one request; returns the reader for
    /// its response line(s).
    fn send(&self, request: &Request) -> Result<BufReader<TcpStream>, String> {
        let mut stream =
            TcpStream::connect(&self.addr).map_err(|e| format!("connect {}: {e}", self.addr))?;
        write_msg(&mut stream, request).map_err(|e| format!("send to {}: {e}", self.addr))?;
        Ok(BufReader::new(stream))
    }

    /// Read one response line; protocol-level `error` responses and
    /// unexpected EOF both surface as `Err`.
    fn receive(&self, reader: &mut BufReader<TcpStream>) -> Result<Response, String> {
        let line = read_msg(reader)
            .map_err(|e| format!("read from {}: {e}", self.addr))?
            .ok_or_else(|| format!("{}: connection closed mid-response", self.addr))?;
        match decode::<Response>(&line).map_err(|e| e.0)? {
            Response::Error { error } => Err(error),
            response => Ok(response),
        }
    }

    fn roundtrip(&self, request: &Request) -> Result<Response, String> {
        let mut reader = self.send(request)?;
        self.receive(&mut reader)
    }

    /// Submit a scenario or cell-key document; returns the job ticket.
    pub fn submit(&self, submission: Submission) -> Result<JobTicket, String> {
        match self.roundtrip(&Request::Submit(submission))? {
            Response::Job(ticket) => Ok(ticket),
            other => Err(format!("unexpected response {other:?}")),
        }
    }

    /// Current state of a job.
    pub fn status(&self, job: &str) -> Result<JobTicket, String> {
        match self.roundtrip(&Request::Status {
            job: job.to_string(),
        })? {
            Response::Job(ticket) => Ok(ticket),
            other => Err(format!("unexpected response {other:?}")),
        }
    }

    /// Follow a job's event stream from the beginning; `on_event` sees
    /// every event in order. Returns once the terminal `done` event
    /// has been delivered.
    pub fn watch(
        &self,
        job: &str,
        mut on_event: impl FnMut(&JobEvent),
    ) -> Result<Vec<JobEvent>, String> {
        let mut reader = self.send(&Request::Watch {
            job: job.to_string(),
        })?;
        let mut events = Vec::new();
        loop {
            match self.receive(&mut reader)? {
                Response::Event(event) => {
                    on_event(&event);
                    let done = event.kind == crate::protocol::EventKind::Done;
                    events.push(event);
                    if done {
                        return Ok(events);
                    }
                }
                other => return Err(format!("unexpected response {other:?}")),
            }
        }
    }

    /// Block until the job settles; returns its artifact document.
    /// `artifact.to_pretty()` is byte-identical to the grid path's
    /// artifact file for the same cell.
    pub fn result(&self, job: &str) -> Result<Json, String> {
        match self.roundtrip(&Request::Result {
            job: job.to_string(),
        })? {
            Response::Artifact { artifact, .. } => Ok(artifact),
            other => Err(format!("unexpected response {other:?}")),
        }
    }

    /// Submit and block until the artifact is available: the
    /// round-trip the `submit --wait` subcommand and the warm-latency
    /// microbenchmark measure.
    pub fn submit_and_fetch(&self, submission: Submission) -> Result<(JobTicket, Json), String> {
        let ticket = self.submit(submission)?;
        let artifact = self.result(&ticket.job)?;
        Ok((ticket, artifact))
    }

    /// Daemon counters plus the store's aggregate shape.
    pub fn stats(&self) -> Result<ServeStats, String> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(format!("unexpected response {other:?}")),
        }
    }

    /// Graceful shutdown: returns how many jobs the drain completed
    /// once everything in flight has settled.
    pub fn shutdown(&self) -> Result<u64, String> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::Shutdown { drained } => Ok(drained),
            other => Err(format!("unexpected response {other:?}")),
        }
    }
}
