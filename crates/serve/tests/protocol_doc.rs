//! `docs/SERVE.md` promises that every JSON block it shows is a valid
//! `cuttlefish/serve/v1` message. This test keeps that promise: each
//! fenced ```json block is decoded through the protocol codec (blocks
//! with a `"req"` field as requests, `"resp"` as responses), so a
//! protocol change that would break the documented examples breaks CI
//! instead — the same discipline as `docs/GOVERNORS.md`.

use bench::json::{Json, ToJson};
use serve::protocol::{Request, Response};

/// The fenced ```json blocks of a markdown document, in order.
fn json_blocks(markdown: &str) -> Vec<String> {
    let mut blocks = Vec::new();
    let mut current: Option<String> = None;
    for line in markdown.lines() {
        match &mut current {
            None if line.trim_start().starts_with("```json") => current = Some(String::new()),
            None => {}
            Some(block) => {
                if line.trim_start().starts_with("```") {
                    blocks.push(current.take().expect("open block"));
                } else {
                    block.push_str(line);
                    block.push('\n');
                }
            }
        }
    }
    assert!(current.is_none(), "unterminated ```json fence");
    blocks
}

#[test]
fn every_serve_md_snippet_is_a_valid_protocol_message() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/SERVE.md");
    let text = std::fs::read_to_string(path).expect("docs/SERVE.md exists");
    let blocks = json_blocks(&text);

    let mut requests = 0usize;
    let mut responses = 0usize;
    for (i, block) in blocks.iter().enumerate() {
        let j = Json::parse(block)
            .unwrap_or_else(|e| panic!("SERVE.md json block #{i} does not parse: {}", e.0));
        // Documented messages must also round-trip: what the page
        // shows is (structurally) what the daemon puts on the wire.
        let reencoded = if j.get("req").is_some() {
            requests += 1;
            serve::protocol::decode::<Request>(block)
                .unwrap_or_else(|e| {
                    panic!("SERVE.md json block #{i} is not a valid request: {}", e.0)
                })
                .to_json()
        } else {
            responses += 1;
            serve::protocol::decode::<Response>(block)
                .unwrap_or_else(|e| {
                    panic!("SERVE.md json block #{i} is not a valid response: {}", e.0)
                })
                .to_json()
        };
        assert_eq!(reencoded, j, "block #{i} round-trips structurally");
        // And the wire form is interchangeable with the shown pretty
        // form — the compact line the daemon actually sends carries
        // the same document.
        assert_eq!(
            Json::parse(&reencoded.to_compact()).expect("compact parses"),
            reencoded
        );
    }

    // The spec documents every request and every response shape.
    assert!(
        requests >= 7,
        "expected one example per request (plus both submit forms), found {requests}"
    );
    assert!(
        responses >= 7,
        "expected one example per response shape, found {responses}"
    );
}
