//! End-to-end daemon tests: the acceptance contract of the serving
//! path. Duplicate concurrent submissions of one scenario must compute
//! exactly once and hand every client byte-identical artifact bytes,
//! equal to the grid path's artifact for the same cell; warm-store
//! submissions must complete without running the simulator; and
//! `shutdown` must drain in-flight work before the daemon exits.

use bench::grid::run_scenario_timed;
use bench::scenario::Scenario;
use bench::store::Store;
use cuttlefish::NodePolicy;
use serve::protocol::{EventKind, JobState, Submission};
use serve::{Client, Server};
use simproc::freq::HASWELL_2650V3;
use std::path::PathBuf;
use workloads::ProgModel;

fn test_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cuttlefish-serve-test-{name}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tiny_scenario() -> Scenario {
    Scenario::bench("UTS", ProgModel::OpenMp, 0.01)
        .label("Default")
        .node(&HASWELL_2650V3, NodePolicy::Default)
        .build()
}

/// Spawn a daemon over `store`; returns a client plus the join handle
/// (the server thread must exit cleanly after `shutdown`).
fn spawn_server(store: Store, workers: usize) -> (Client, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", store, workers).expect("bind ephemeral");
    let client = Client::new(server.local_addr().to_string());
    let handle = std::thread::spawn(move || server.run().expect("server runs"));
    (client, handle)
}

#[test]
fn concurrent_duplicates_compute_once_and_match_the_grid_artifact() {
    let scenario = tiny_scenario();
    // The reference bytes: the batch `--scenario` path, storeless.
    let (reference, _) = run_scenario_timed(&scenario, None).expect("grid path runs");
    let reference = reference.to_json_string();

    let store = Store::with_code_version(test_root("coalesce"), "cv-serve");
    let (client, server) = spawn_server(store.clone(), 2);

    // N clients race the same submission; exactly one computation may
    // happen (one job, one miss), every other submission coalesces.
    const CLIENTS: usize = 6;
    let artifacts: Vec<(bool, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let client = client.clone();
                let scenario = scenario.clone();
                scope.spawn(move || {
                    let (ticket, artifact) = client
                        .submit_and_fetch(Submission::Scenario(Box::new(scenario)))
                        .expect("submit");
                    (ticket.coalesced, artifact.to_pretty())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(
        artifacts.iter().filter(|(coalesced, _)| !coalesced).count(),
        1,
        "exactly one submission may create the job"
    );
    for (_, bytes) in &artifacts {
        assert_eq!(
            bytes, &reference,
            "every client must receive the grid path's artifact bytes"
        );
    }

    let stats = client.stats().expect("stats");
    assert_eq!(stats.jobs, 1, "one distinct key, one job");
    assert_eq!(stats.submits, CLIENTS as u64);
    assert_eq!(stats.coalesced, CLIENTS as u64 - 1);
    assert_eq!((stats.hits, stats.misses), (0, 1));
    assert_eq!(stats.in_flight, 0);
    assert!(
        stats.wall_ms_saved > 0.0,
        "coalesced duplicates must bank the compute wall-clock"
    );
    // The miss was committed back: the daemon and the batch bins share
    // one cache.
    assert_eq!(store.entry_files().len(), 1);
    store
        .verify_file(&store.entry_files()[0])
        .expect("committed entry verifies");

    assert_eq!(client.shutdown().expect("shutdown"), 0);
    server.join().expect("server thread exits cleanly");
}

#[test]
fn warm_submissions_skip_the_simulator_and_replay_identical_bytes() {
    let scenario = tiny_scenario();
    let root = test_root("warm");
    let store = Store::with_code_version(&root, "cv-serve");

    // Warm the store through the *batch* path; the daemon must hit it.
    let (reference, timing) = run_scenario_timed(&scenario, Some(&store)).expect("grid path runs");
    assert!(!timing.cells[0].cached);
    let reference = reference.to_json_string();

    let (client, server) = spawn_server(store, 1);
    let (ticket, artifact) = client
        .submit_and_fetch(Submission::Scenario(Box::new(scenario)))
        .expect("submit");
    assert_eq!(artifact.to_pretty(), reference);

    // The event stream proves no simulation ran: queued → hit → done,
    // with the committing run's wall-clock and quanta attached.
    let events = client.watch(&ticket.job, |_| {}).expect("watch");
    let kinds: Vec<EventKind> = events.iter().map(|e| e.kind).collect();
    assert_eq!(
        kinds,
        [EventKind::Queued, EventKind::Hit, EventKind::Done],
        "a warm submission must not run the simulator"
    );
    let hit = &events[1];
    assert_eq!(hit.wall_ms, Some(timing.cells[0].wall_ms));
    assert_eq!(
        hit.quanta,
        Some([
            timing.cells[0].stepped_quanta,
            timing.cells[0].idle_advanced_quanta,
            timing.cells[0].busy_advanced_quanta,
            timing.cells[0].total_quanta,
        ])
    );

    let stats = client.stats().expect("stats");
    assert_eq!((stats.hits, stats.misses), (1, 0));
    assert!(stats.wall_ms_saved >= timing.cells[0].wall_ms);
    assert_eq!(stats.store.entries, 1);

    // `status` agrees, and a repeat submission coalesces instantly.
    assert_eq!(
        client.status(&ticket.job).expect("status").state,
        JobState::Done
    );
    let repeat = client
        .submit(Submission::Scenario(Box::new(tiny_scenario())))
        .expect("repeat");
    assert!(repeat.coalesced);
    assert_eq!(repeat.state, JobState::Done);

    client.shutdown().expect("shutdown");
    server.join().expect("clean exit");
}

#[test]
fn miss_events_cover_the_full_lifecycle_and_shutdown_drains() {
    let store = Store::with_code_version(test_root("lifecycle"), "cv-serve");
    let (client, server) = spawn_server(store.clone(), 1);

    let ticket = client
        .submit(Submission::Scenario(Box::new(tiny_scenario())))
        .expect("submit");
    assert!(!ticket.coalesced);

    // Shutdown immediately: the drain must finish the in-flight job
    // (and commit it) before the daemon stops.
    let drained = client.shutdown().expect("shutdown");
    // ≤ 1, not == 1: on a fast machine the worker may settle the tiny
    // cell before the shutdown request lands. The store assertion
    // below is the real drain contract.
    assert!(drained <= 1, "one job was submitted, drained {drained}");
    server.join().expect("clean exit");
    assert_eq!(
        store.entry_files().len(),
        1,
        "the drained job was committed to the store"
    );

    // A fresh daemon on the same store serves it warm; its watch
    // stream shows the *miss* lifecycle was queued → running →
    // committed → done (events were delivered before shutdown).
    let (client, server) = spawn_server(store, 1);
    let (ticket2, _) = client
        .submit_and_fetch(Submission::Scenario(Box::new(tiny_scenario())))
        .expect("warm submit");
    assert_eq!(ticket2.job, ticket.job, "same cell, same key, same job id");
    let events = client.watch(&ticket2.job, |_| {}).expect("watch");
    assert_eq!(events[1].kind, EventKind::Hit);
    client.shutdown().expect("shutdown");
    server.join().expect("clean exit");
}

#[test]
fn submissions_are_refused_while_draining_and_errors_are_typed() {
    let store = Store::with_code_version(test_root("refuse"), "cv-serve");
    let (client, server) = spawn_server(store, 1);

    // Unknown job ids and malformed ids are protocol errors.
    assert!(client.status("0123456789abcdef").is_err());
    assert!(client.result("zz").is_err());

    // A scenario the store cannot address (non-harness seed) is
    // refused at submit time with the grid path's own diagnostic.
    let scenario = Scenario::bench("UTS", ProgModel::OpenMp, 0.01)
        .node(&HASWELL_2650V3, NodePolicy::Default)
        .seed(12345)
        .build();
    let err = client
        .submit(Submission::Scenario(Box::new(scenario)))
        .expect_err("non-harness seeds are not store-addressable");
    assert!(err.contains("harness"), "diagnostic names the cause: {err}");

    client.shutdown().expect("shutdown");
    server.join().expect("clean exit");

    // After shutdown the daemon is gone: connections are refused.
    assert!(client.stats().is_err());
}
