//! Controller-equivalence suite for the cluster layer: with event
//! stepping on (idle *and* busy fast-forward), every shipped governor
//! must produce *bit-identical* cluster outcomes to the historical
//! quantum-by-quantum loop — energies, wall time, instructions, and
//! per-operating-point residency — while stepping strictly fewer
//! quanta wherever a fast path legally exists.
//!
//! This is the cluster-level half of the `FrequencyController`
//! contract (see `cuttlefish::controller`): the engine suites prove
//! the advance arithmetic itself is exact; this suite proves each
//! controller's capacity answers are honest across real BSP phase
//! structure (compute stretches, barrier waits, exchange windows).

use cluster::{BspApp, Cluster, CommModel, NodePolicy};
use cuttlefish::controller::{OracleEntry, OracleTable};
use cuttlefish::tipi::TipiSlab;
use cuttlefish::{Config, PidGains};
use simproc::engine::Chunk;
use simproc::freq::Freq;
use simproc::perf::CostProfile;

/// A short memory-bound stencil superstep (same shape as the node
/// tests, sized down so six governors x two paths stay fast).
fn heat_chunks() -> Vec<Chunk> {
    (0..24)
        .map(|_| {
            Chunk::new(30_000_000, 1_390_000, 590_000).with_profile(CostProfile::new(0.55, 12.0))
        })
        .collect()
}

/// A compute-bound superstep: zero traffic, so fixed-point governors
/// (Ondemand, Default) reach drift-free busy stability.
fn compute_chunks() -> Vec<Chunk> {
    (0..24)
        .map(|_| Chunk::new(40_000_000, 2_000, 400).with_profile(CostProfile::new(0.9, 4.0)))
        .collect()
}

fn policies() -> Vec<(&'static str, NodePolicy)> {
    let table = OracleTable {
        slab_width: 0.004,
        tinv_ns: 20_000_000,
        entries: vec![OracleEntry {
            slab: TipiSlab(16),
            cf: Freq(12),
            uf: Freq(22),
        }],
    };
    vec![
        ("Default", NodePolicy::Default),
        ("Cuttlefish", NodePolicy::Cuttlefish(Config::default())),
        (
            "Pinned",
            NodePolicy::Pinned {
                cf: Freq(14),
                uf: Freq(24),
            },
        ),
        ("Ondemand", NodePolicy::Ondemand),
        ("Oracle", NodePolicy::Oracle(table)),
        (
            "PidUncore",
            NodePolicy::PidUncore {
                config: Config::default(),
                gains: PidGains::default(),
            },
        ),
    ]
}

fn run(policy: &NodePolicy, app: &BspApp, event_stepping: bool) -> cluster::BspOutcome {
    let mut cluster = Cluster::new(2, policy.clone(), CommModel::default());
    cluster.set_event_stepping(event_stepping);
    cluster.run(app)
}

#[test]
fn all_six_governors_are_bit_identical_under_event_stepping() {
    for (make, label) in [
        (heat_chunks as fn() -> Vec<Chunk>, "memory"),
        (compute_chunks as fn() -> Vec<Chunk>, "compute"),
    ] {
        let app = BspApp::uniform(2, 6, make);
        for (name, policy) in policies() {
            let slow = run(&policy, &app, false);
            let fast = run(&policy, &app, true);
            assert_eq!(
                slow.joules.to_bits(),
                fast.joules.to_bits(),
                "{name}/{label}: energy must be bit-identical"
            );
            assert_eq!(
                slow.seconds.to_bits(),
                fast.seconds.to_bits(),
                "{name}/{label}: wall time must be bit-identical"
            );
            assert_eq!(
                slow.instructions.to_bits(),
                fast.instructions.to_bits(),
                "{name}/{label}: instructions must be bit-identical"
            );
            for (a, b) in slow.node_joules.iter().zip(&fast.node_joules) {
                assert_eq!(a.to_bits(), b.to_bits(), "{name}/{label}: per-node energy");
            }
            assert_eq!(
                slow.barrier_wait_s.to_bits(),
                fast.barrier_wait_s.to_bits(),
                "{name}/{label}: barrier accounting"
            );
            // Identical virtual timelines, attributable quanta.
            assert_eq!(slow.total_quanta, fast.total_quanta, "{name}/{label}");
            assert_eq!(
                fast.total_quanta,
                fast.stepped_quanta + fast.idle_advanced_quanta + fast.busy_advanced_quanta,
                "{name}/{label}: counter split must account for every quantum"
            );
            assert_eq!(
                slow.stepped_quanta, slow.total_quanta,
                "{name}/{label}: the reference path steps everything"
            );
            assert!(
                fast.stepped_quanta <= slow.stepped_quanta,
                "{name}/{label}: the event path must never step more"
            );
        }
    }
}

#[test]
fn busy_fast_forward_engages_where_the_contract_allows() {
    // Pinned certifies unbounded busy stretches; the tick-scheduled
    // pair certifies everything between Tinv ticks. PidUncore returns
    // 0 by design — the control plane must honour that too.
    let app = BspApp::uniform(2, 4, heat_chunks as fn() -> Vec<Chunk>);
    for (name, policy) in policies() {
        let fast = run(&policy, &app, true);
        match name {
            "Pinned" | "Cuttlefish" | "Oracle" => assert!(
                fast.busy_advanced_quanta > fast.stepped_quanta,
                "{name}: compute phases must fast-forward (busy {} vs stepped {})",
                fast.busy_advanced_quanta,
                fast.stepped_quanta
            ),
            "PidUncore" => assert_eq!(
                fast.busy_advanced_quanta, 0,
                "a per-quantum PID cannot fast-forward while busy"
            ),
            _ => {}
        }
    }
}
