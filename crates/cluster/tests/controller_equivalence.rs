//! Controller-equivalence suite for the cluster layer: the
//! event-driven scheduler (global min-heap over `EventSource`s, idle
//! *and* busy fast-forward) must produce *bit-identical* cluster
//! outcomes to the historical quantum-by-quantum lockstep loop —
//! energies, wall time, instructions, barrier accounting, and
//! per-operating-point residency — while stepping strictly fewer
//! quanta wherever a fast path legally exists.
//!
//! This is the cluster-level half of the `FrequencyController`
//! contract (see `cuttlefish::controller`): the engine suites prove
//! the advance arithmetic itself is exact; this suite proves each
//! controller's capacity answers are honest across real BSP phase
//! structure (compute stretches, barrier waits, exchange windows) —
//! including when the heap slices a node's timeline at other nodes'
//! event timestamps.

use cluster::{
    BspApp, BspOutcome, Cluster, CommModel, NodePolicy, ReplicatedProgram, SteppingMode,
};
use cuttlefish::controller::{OracleEntry, OracleTable};
use cuttlefish::tipi::TipiSlab;
use cuttlefish::{Config, PidGains};
use simproc::engine::{Chunk, Workload};
use simproc::freq::{Freq, FreqDomain, MachineSpec, HASWELL_2650V3};
use simproc::perf::CostProfile;
use std::collections::BTreeMap;
use tasking::{DagBuilder, WorkStealingScheduler};

/// A short memory-bound stencil superstep (same shape as the node
/// tests, sized down so six governors x two paths stay fast).
fn heat_chunks() -> Vec<Chunk> {
    (0..24)
        .map(|_| {
            Chunk::new(30_000_000, 1_390_000, 590_000).with_profile(CostProfile::new(0.55, 12.0))
        })
        .collect()
}

/// A compute-bound superstep: zero traffic, so fixed-point governors
/// (Ondemand, Default) reach drift-free busy stability.
fn compute_chunks() -> Vec<Chunk> {
    (0..24)
        .map(|_| Chunk::new(40_000_000, 2_000, 400).with_profile(CostProfile::new(0.9, 4.0)))
        .collect()
}

fn policies() -> Vec<(&'static str, NodePolicy)> {
    let table = OracleTable {
        slab_width: 0.004,
        tinv_ns: 20_000_000,
        entries: vec![OracleEntry {
            slab: TipiSlab(16),
            cf: Freq(12),
            uf: Freq(22),
        }],
    };
    vec![
        ("Default", NodePolicy::Default),
        ("Cuttlefish", NodePolicy::Cuttlefish(Config::default())),
        (
            "Pinned",
            NodePolicy::Pinned {
                cf: Freq(14),
                uf: Freq(24),
            },
        ),
        ("Ondemand", NodePolicy::Ondemand),
        ("Oracle", NodePolicy::Oracle(table)),
        (
            "PidUncore",
            NodePolicy::PidUncore {
                config: Config::default(),
                gains: PidGains::default(),
            },
        ),
    ]
}

/// Outcome plus the merged residency map — everything the bit-identity
/// assertions compare.
fn run(policy: &NodePolicy, app: &BspApp, mode: SteppingMode) -> (BspOutcome, Residency) {
    let mut cluster = Cluster::new(2, policy.clone(), CommModel::default());
    cluster.set_stepping(mode);
    let outcome = cluster.run_program(&mut &*app);
    (outcome, cluster.residency())
}

type Residency = BTreeMap<(u32, u32), u64>;

/// The full bit-identity check between a lockstep and an event-driven
/// outcome of the same cell.
fn assert_bit_identical(
    label: &str,
    (slow, slow_res): &(BspOutcome, Residency),
    (fast, fast_res): &(BspOutcome, Residency),
) {
    assert_eq!(
        slow.joules.to_bits(),
        fast.joules.to_bits(),
        "{label}: energy must be bit-identical"
    );
    assert_eq!(
        slow.seconds.to_bits(),
        fast.seconds.to_bits(),
        "{label}: wall time must be bit-identical"
    );
    assert_eq!(
        slow.instructions.to_bits(),
        fast.instructions.to_bits(),
        "{label}: instructions must be bit-identical"
    );
    for (a, b) in slow.node_joules.iter().zip(&fast.node_joules) {
        assert_eq!(a.to_bits(), b.to_bits(), "{label}: per-node energy");
    }
    assert_eq!(
        slow.barrier_wait_s.to_bits(),
        fast.barrier_wait_s.to_bits(),
        "{label}: barrier accounting"
    );
    for (a, b) in slow
        .node_barrier_wait_s
        .iter()
        .zip(&fast.node_barrier_wait_s)
    {
        assert_eq!(a.to_bits(), b.to_bits(), "{label}: per-node barrier wait");
    }
    assert_eq!(slow_res, fast_res, "{label}: residency map");
    // Identical virtual timelines, attributable quanta — per node, so a
    // straggler cannot hide behind fleet sums.
    assert_eq!(slow.total_quanta, fast.total_quanta, "{label}");
    for (i, (a, b)) in slow.node_quanta.iter().zip(&fast.node_quanta).enumerate() {
        assert_eq!(a.total, b.total, "{label}: node {i} total quanta");
        assert_eq!(
            b.total,
            b.stepped + b.idle_advanced + b.busy_advanced,
            "{label}: node {i} counter split must account for every quantum"
        );
        assert_eq!(
            a.stepped, a.total,
            "{label}: node {i}: the reference path steps everything"
        );
        assert!(
            b.stepped <= a.stepped,
            "{label}: node {i}: the event path must never step more"
        );
    }
}

#[test]
fn all_six_governors_are_bit_identical_under_event_stepping() {
    for (make, label) in [
        (heat_chunks as fn() -> Vec<Chunk>, "memory"),
        (compute_chunks as fn() -> Vec<Chunk>, "compute"),
    ] {
        let app = BspApp::uniform(2, 6, make);
        for (name, policy) in policies() {
            let slow = run(&policy, &app, SteppingMode::Lockstep);
            let fast = run(&policy, &app, SteppingMode::EventDriven);
            assert_bit_identical(&format!("{name}/{label}"), &slow, &fast);
        }
    }
}

#[test]
fn busy_fast_forward_engages_where_the_contract_allows() {
    // Pinned certifies unbounded busy stretches; the tick-scheduled
    // pair certifies everything between Tinv ticks. PidUncore returns
    // 0 by design — the control plane must honour that too.
    let app = BspApp::uniform(2, 4, heat_chunks as fn() -> Vec<Chunk>);
    for (name, policy) in policies() {
        let (fast, _) = run(&policy, &app, SteppingMode::EventDriven);
        match name {
            "Pinned" | "Cuttlefish" | "Oracle" => assert!(
                fast.busy_advanced_quanta > fast.stepped_quanta,
                "{name}: compute phases must fast-forward (busy {} vs stepped {})",
                fast.busy_advanced_quanta,
                fast.stepped_quanta
            ),
            "PidUncore" => assert_eq!(
                fast.busy_advanced_quanta, 0,
                "a per-quantum PID cannot fast-forward while busy"
            ),
            _ => {}
        }
    }
}

/// A de-rated 5-core node with tighter frequency ceilings — the "one
/// slow node" hardware of the §4.6 imbalance discussion, defined
/// inline (the bench crate owns the canonical copy).
fn straggler_spec() -> MachineSpec {
    MachineSpec {
        name: "de-rated straggler (5 cores, 1.2-1.6/1.2-2.2 GHz)".to_string(),
        n_cores: 5,
        core: FreqDomain::new(Freq(12), Freq(16)),
        uncore: FreqDomain::new(Freq(12), Freq(22)),
        quantum_ns: HASWELL_2650V3.quantum_ns,
    }
}

/// An irregular fan-out DAG run work-stealing with a per-node seed:
/// failed steal sweeps advance the victim PRNG, so any dishonest skip
/// of a "parked" pull shows up as a diverged schedule — exactly what
/// the bit-identity check is for.
fn stealing_workload(node: usize, n_cores: usize) -> Box<dyn Workload> {
    let mut b = DagBuilder::default();
    let root =
        b.add_task(Chunk::new(200_000, 9_000, 3_800).with_profile(CostProfile::new(0.55, 12.0)));
    for i in 0..60 {
        let t = b.add_task(
            Chunk::new(2_000_000 + 40_000 * (i % 7), 92_000, 39_000)
                .with_profile(CostProfile::new(0.55, 12.0)),
        );
        b.add_dep(root, t);
    }
    Box::new(WorkStealingScheduler::new(
        b.build(),
        n_cores,
        0xC0FFEE ^ (node as u64) << 32,
    ))
}

#[test]
fn straggler_fleet_is_bit_identical_across_stepping_modes() {
    // A seeded 8-node fleet with one de-rated straggler: seven paper
    // machines plus the slow node, each draining an irregular
    // work-stealing DAG, then one barrier (set by the straggler) and
    // one exchange. The heap interleaves node timelines at arbitrary
    // event boundaries here — heterogeneous clocks, long tail waits —
    // and must still match lockstep bit for bit on every governor.
    let fleet = |policy: &NodePolicy| -> Vec<(MachineSpec, NodePolicy)> {
        (0..7)
            .map(|_| (HASWELL_2650V3.clone(), policy.clone()))
            .chain(std::iter::once((straggler_spec(), policy.clone())))
            .collect()
    };
    for (name, policy) in policies() {
        let mut outcomes = [SteppingMode::Lockstep, SteppingMode::EventDriven]
            .into_iter()
            .map(|mode| {
                let mut cluster = Cluster::with_nodes(fleet(&policy), CommModel::default());
                cluster.set_stepping(mode);
                let outcome = cluster
                    .run_program(&mut ReplicatedProgram::new(8, |node, n_cores| {
                        stealing_workload(node, n_cores)
                    }));
                (outcome, cluster.residency())
            });
        let slow = outcomes.next().unwrap();
        let fast = outcomes.next().unwrap();
        assert_bit_identical(&format!("{name}/straggler-fleet"), &slow, &fast);
        // The de-rated node is the straggler: everyone else waits.
        let (outcome, _) = fast;
        assert!(
            outcome.node_barrier_wait_s[7] < outcome.node_barrier_wait_s[0],
            "{name}: the straggler must wait least at the barrier"
        );
    }
}
