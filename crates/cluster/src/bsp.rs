//! Bulk-synchronous application and communication models.

use simproc::engine::{Chunk, Workload};
use tasking::{Region, WorkSharingScheduler};

/// α–β model for the inter-node exchange after every superstep.
#[derive(Debug, Clone)]
pub struct CommModel {
    /// Per-message latency (software + NIC + switch), seconds.
    pub alpha_s: f64,
    /// Exchanged bytes per node per superstep.
    pub bytes: f64,
    /// Network bandwidth per node, bytes/second.
    pub bandwidth: f64,
}

impl Default for CommModel {
    fn default() -> Self {
        // A halo exchange of a few MB over 100 Gb/s class fabric.
        CommModel {
            alpha_s: 10.0e-6,
            bytes: 4.0e6,
            bandwidth: 12.0e9,
        }
    }
}

impl CommModel {
    /// Wall time of one exchange.
    pub fn exchange_seconds(&self) -> f64 {
        self.alpha_s + self.bytes / self.bandwidth
    }
}

/// A bulk-synchronous application: for each superstep, each node's
/// local computation expressed as chunks (executed work-sharing across
/// the node's cores).
#[derive(Debug, Clone)]
pub struct BspApp {
    /// `steps[s][node]` = that node's chunk list in superstep `s`.
    pub steps: Vec<Vec<Vec<Chunk>>>,
}

impl BspApp {
    /// Uniform app: every node gets the same chunks each superstep.
    pub fn uniform(n_nodes: usize, n_steps: usize, make: impl Fn() -> Vec<Chunk>) -> Self {
        BspApp {
            steps: (0..n_steps)
                .map(|_| (0..n_nodes).map(|_| make()).collect())
                .collect(),
        }
    }

    /// Imbalanced app: node `slow` gets `factor`× the chunks of the
    /// others — the §4.6 slack scenario.
    pub fn imbalanced(
        n_nodes: usize,
        n_steps: usize,
        slow: usize,
        factor: usize,
        make: impl Fn() -> Vec<Chunk>,
    ) -> Self {
        assert!(slow < n_nodes && factor >= 1);
        BspApp {
            steps: (0..n_steps)
                .map(|_| {
                    (0..n_nodes)
                        .map(|node| {
                            let mut chunks = make();
                            if node == slow {
                                let extra: Vec<Chunk> = (1..factor).flat_map(|_| make()).collect();
                                chunks.extend(extra);
                            }
                            chunks
                        })
                        .collect()
                })
                .collect(),
        }
    }

    /// Number of nodes the app addresses.
    pub fn n_nodes(&self) -> usize {
        self.steps.first().map(Vec::len).unwrap_or(0)
    }

    /// Number of supersteps.
    pub fn n_steps(&self) -> usize {
        self.steps.len()
    }
}

/// A source of bulk-synchronous work, the one shape
/// [`crate::Cluster::run_program`] executes: for each superstep, each
/// node receives a workload built for its core count. Both historical
/// entry points are expressed through it — [`BspApp`] (chunk lists run
/// work-sharing) and [`ReplicatedProgram`] (one arbitrary workload per
/// node, a single superstep).
pub trait BspProgram {
    /// Number of nodes the program addresses.
    fn n_nodes(&self) -> usize;
    /// Number of supersteps.
    fn n_steps(&self) -> usize;
    /// Build node `node`'s workload for superstep `step`.
    fn workload(&mut self, step: usize, node: usize, n_cores: usize) -> Box<dyn Workload>;
}

impl BspProgram for &BspApp {
    fn n_nodes(&self) -> usize {
        BspApp::n_nodes(self)
    }

    fn n_steps(&self) -> usize {
        BspApp::n_steps(self)
    }

    fn workload(&mut self, step: usize, node: usize, n_cores: usize) -> Box<dyn Workload> {
        let chunks = self.steps[step][node].clone();
        let region = Region::statically_partitioned(chunks, n_cores);
        Box::new(WorkSharingScheduler::new(vec![region], n_cores))
    }
}

/// The scenario-grid shape "the same benchmark replicated over N
/// nodes" as a [`BspProgram`]: one superstep in which each node runs
/// `make(node, n_cores)` to completion, then one barrier and one
/// exchange.
pub struct ReplicatedProgram<F> {
    n_nodes: usize,
    make: F,
}

impl<F> ReplicatedProgram<F>
where
    F: FnMut(usize, usize) -> Box<dyn Workload>,
{
    /// Replicate `make(node, n_cores)` over `n_nodes` nodes.
    pub fn new(n_nodes: usize, make: F) -> Self {
        assert!(n_nodes > 0);
        ReplicatedProgram { n_nodes, make }
    }
}

impl<F> BspProgram for ReplicatedProgram<F>
where
    F: FnMut(usize, usize) -> Box<dyn Workload>,
{
    fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    fn n_steps(&self) -> usize {
        1
    }

    fn workload(&mut self, _step: usize, node: usize, n_cores: usize) -> Box<dyn Workload> {
        (self.make)(node, n_cores)
    }
}

/// One node's virtual quanta, split by the mechanism that retired them
/// — the cluster-level mirror of the engine's stepping counters. The
/// sum fields on [`BspOutcome`] fold these over nodes; the per-node
/// split is what keeps fleet fast-forward floors honest (a fleet where
/// one straggler steps everything while the rest advance still shows
/// the straggler's cost here).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuantaSplit {
    /// Quanta executed by individual engine steps.
    pub stepped: u64,
    /// Quanta fast-forwarded analytically while parked (barrier and
    /// exchange windows).
    pub idle_advanced: u64,
    /// Quanta fast-forwarded analytically while executing (compute
    /// phases at a controller fixed point).
    pub busy_advanced: u64,
    /// Total virtual quanta elapsed; always
    /// `stepped + idle_advanced + busy_advanced`.
    pub total: u64,
}

/// Aggregate result of a cluster run.
#[derive(Debug, Clone)]
pub struct BspOutcome {
    /// Wall time (the slowest node per superstep, plus exchanges).
    pub seconds: f64,
    /// Total energy across all nodes.
    pub joules: f64,
    /// Instructions retired across all nodes.
    pub instructions: f64,
    /// Per-node energies.
    pub node_joules: Vec<f64>,
    /// Per-node busy (non-barrier-wait) seconds.
    pub node_busy_s: Vec<f64>,
    /// Total seconds nodes spent waiting at superstep barriers.
    pub barrier_wait_s: f64,
    /// Barrier wait charged to each node individually — the §4.6
    /// imbalance study reads the skew, not just the sum.
    pub node_barrier_wait_s: Vec<f64>,
    /// Per-node stepping counters, split by mechanism (see
    /// [`QuantaSplit`]); the `*_quanta` sums below fold these.
    pub node_quanta: Vec<QuantaSplit>,
    /// Quanta executed by individual engine steps, summed over nodes.
    pub stepped_quanta: u64,
    /// Quanta fast-forwarded analytically while parked (barrier and
    /// exchange windows), summed over nodes.
    pub idle_advanced_quanta: u64,
    /// Quanta fast-forwarded analytically while executing (compute
    /// phases at a controller fixed point), summed over nodes.
    pub busy_advanced_quanta: u64,
    /// Total virtual quanta elapsed, summed over nodes; always
    /// `stepped + idle_advanced + busy_advanced`.
    pub total_quanta: u64,
}

impl BspOutcome {
    /// Energy-delay product.
    pub fn edp(&self) -> f64 {
        self.joules * self.seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_model_time() {
        let c = CommModel::default();
        let t = c.exchange_seconds();
        assert!(t > c.alpha_s);
        assert!((t - (10.0e-6 + 4.0e6 / 12.0e9)).abs() < 1e-12);
    }

    #[test]
    fn uniform_app_shape() {
        let app = BspApp::uniform(4, 7, || vec![Chunk::new(1000, 10, 2)]);
        assert_eq!(app.n_nodes(), 4);
        assert_eq!(app.n_steps(), 7);
        for step in &app.steps {
            for node in step {
                assert_eq!(node.len(), 1);
            }
        }
    }

    #[test]
    fn imbalanced_app_loads_one_node() {
        let app = BspApp::imbalanced(4, 3, 2, 3, || vec![Chunk::new(1000, 10, 2)]);
        for step in &app.steps {
            assert_eq!(step[0].len(), 1);
            assert_eq!(step[2].len(), 3, "slow node gets factor x chunks");
        }
    }
}
