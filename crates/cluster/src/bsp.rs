//! Bulk-synchronous application and communication models.

use simproc::engine::Chunk;

/// α–β model for the inter-node exchange after every superstep.
#[derive(Debug, Clone)]
pub struct CommModel {
    /// Per-message latency (software + NIC + switch), seconds.
    pub alpha_s: f64,
    /// Exchanged bytes per node per superstep.
    pub bytes: f64,
    /// Network bandwidth per node, bytes/second.
    pub bandwidth: f64,
}

impl Default for CommModel {
    fn default() -> Self {
        // A halo exchange of a few MB over 100 Gb/s class fabric.
        CommModel {
            alpha_s: 10.0e-6,
            bytes: 4.0e6,
            bandwidth: 12.0e9,
        }
    }
}

impl CommModel {
    /// Wall time of one exchange.
    pub fn exchange_seconds(&self) -> f64 {
        self.alpha_s + self.bytes / self.bandwidth
    }
}

/// A bulk-synchronous application: for each superstep, each node's
/// local computation expressed as chunks (executed work-sharing across
/// the node's cores).
#[derive(Debug, Clone)]
pub struct BspApp {
    /// `steps[s][node]` = that node's chunk list in superstep `s`.
    pub steps: Vec<Vec<Vec<Chunk>>>,
}

impl BspApp {
    /// Uniform app: every node gets the same chunks each superstep.
    pub fn uniform(n_nodes: usize, n_steps: usize, make: impl Fn() -> Vec<Chunk>) -> Self {
        BspApp {
            steps: (0..n_steps)
                .map(|_| (0..n_nodes).map(|_| make()).collect())
                .collect(),
        }
    }

    /// Imbalanced app: node `slow` gets `factor`× the chunks of the
    /// others — the §4.6 slack scenario.
    pub fn imbalanced(
        n_nodes: usize,
        n_steps: usize,
        slow: usize,
        factor: usize,
        make: impl Fn() -> Vec<Chunk>,
    ) -> Self {
        assert!(slow < n_nodes && factor >= 1);
        BspApp {
            steps: (0..n_steps)
                .map(|_| {
                    (0..n_nodes)
                        .map(|node| {
                            let mut chunks = make();
                            if node == slow {
                                let extra: Vec<Chunk> = (1..factor).flat_map(|_| make()).collect();
                                chunks.extend(extra);
                            }
                            chunks
                        })
                        .collect()
                })
                .collect(),
        }
    }

    /// Number of nodes the app addresses.
    pub fn n_nodes(&self) -> usize {
        self.steps.first().map(Vec::len).unwrap_or(0)
    }

    /// Number of supersteps.
    pub fn n_steps(&self) -> usize {
        self.steps.len()
    }
}

/// Aggregate result of a cluster run.
#[derive(Debug, Clone)]
pub struct BspOutcome {
    /// Wall time (the slowest node per superstep, plus exchanges).
    pub seconds: f64,
    /// Total energy across all nodes.
    pub joules: f64,
    /// Instructions retired across all nodes.
    pub instructions: f64,
    /// Per-node energies.
    pub node_joules: Vec<f64>,
    /// Per-node busy (non-barrier-wait) seconds.
    pub node_busy_s: Vec<f64>,
    /// Total seconds nodes spent waiting at superstep barriers.
    pub barrier_wait_s: f64,
    /// Barrier wait charged to each node individually — the §4.6
    /// imbalance study reads the skew, not just the sum.
    pub node_barrier_wait_s: Vec<f64>,
    /// Quanta executed by individual engine steps, summed over nodes.
    pub stepped_quanta: u64,
    /// Quanta fast-forwarded analytically while parked (barrier and
    /// exchange windows), summed over nodes.
    pub idle_advanced_quanta: u64,
    /// Quanta fast-forwarded analytically while executing (compute
    /// phases at a controller fixed point), summed over nodes.
    pub busy_advanced_quanta: u64,
    /// Total virtual quanta elapsed, summed over nodes; always
    /// `stepped + idle_advanced + busy_advanced`.
    pub total_quanta: u64,
}

impl BspOutcome {
    /// Energy-delay product.
    pub fn edp(&self) -> f64 {
        self.joules * self.seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_model_time() {
        let c = CommModel::default();
        let t = c.exchange_seconds();
        assert!(t > c.alpha_s);
        assert!((t - (10.0e-6 + 4.0e6 / 12.0e9)).abs() < 1e-12);
    }

    #[test]
    fn uniform_app_shape() {
        let app = BspApp::uniform(4, 7, || vec![Chunk::new(1000, 10, 2)]);
        assert_eq!(app.n_nodes(), 4);
        assert_eq!(app.n_steps(), 7);
        for step in &app.steps {
            for node in step {
                assert_eq!(node.len(), 1);
            }
        }
    }

    #[test]
    fn imbalanced_app_loads_one_node() {
        let app = BspApp::imbalanced(4, 3, 2, 3, || vec![Chunk::new(1000, 10, 2)]);
        for step in &app.steps {
            assert_eq!(step[0].len(), 1);
            assert_eq!(step[2].len(), 3, "slow node gets factor x chunks");
        }
    }
}
