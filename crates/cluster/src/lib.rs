//! # cluster — MPI+X-style execution with per-node Cuttlefish
//!
//! Section 4.6 of the paper scopes Cuttlefish to single-node parallel
//! regions of MPI+X programs: one process per node doing inter-node
//! communication, a multithreaded runtime (OpenMP/HClib) inside each
//! node, and one Cuttlefish instance per node tuning its own package.
//! The paper notes the limitation this crate makes measurable:
//! Cuttlefish does **not** reclaim inter-node slack — a node that
//! finishes its superstep early waits at the tuned frequencies rather
//! than slowing down to arrive just-in-time (the Adagio-style
//! optimization the paper leaves to future work).
//!
//! The model is bulk-synchronous: every superstep, each node computes
//! its local region, then all nodes synchronize and exchange halos
//! (α–β communication model). Each node is a full [`simproc::SimProcessor`]
//! with its own MSR file and optional [`cuttlefish::driver::CuttlefishDriver`]; node
//! daemons see only their local counters, exactly as real per-node
//! instances would.
//!
//! ```
//! use cluster::{BspApp, Cluster, CommModel, NodePolicy};
//! use simproc::engine::Chunk;
//!
//! // 2 nodes, 3 supersteps, balanced work.
//! let app = BspApp::uniform(2, 3, || vec![Chunk::new(2_000_000, 130_000, 56_000)]);
//! let mut cluster = Cluster::new(2, NodePolicy::Default, CommModel::default());
//! let outcome = cluster.run(&app);
//! assert!(outcome.seconds > 0.0 && outcome.joules > 0.0);
//! ```

pub mod bsp;
pub mod node;

pub use bsp::{BspApp, BspOutcome, CommModel};
pub use node::{Cluster, NodePolicy};
