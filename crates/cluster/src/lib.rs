//! # cluster — MPI+X-style execution with per-node Cuttlefish
//!
//! Section 4.6 of the paper scopes Cuttlefish to single-node parallel
//! regions of MPI+X programs: one process per node doing inter-node
//! communication, a multithreaded runtime (OpenMP/HClib) inside each
//! node, and one Cuttlefish instance per node tuning its own package.
//! The paper notes the limitation this crate makes measurable:
//! Cuttlefish does **not** reclaim inter-node slack — a node that
//! finishes its superstep early waits at the tuned frequencies rather
//! than slowing down to arrive just-in-time (the Adagio-style
//! optimization the paper leaves to future work).
//!
//! The model is bulk-synchronous: every superstep, each node computes
//! its local region, then all nodes synchronize and exchange halos
//! (α–β communication model). Each node is a full [`simproc::SimProcessor`]
//! with its own MSR file and optional [`cuttlefish::driver::CuttlefishDriver`]; node
//! daemons see only their local counters, exactly as real per-node
//! instances would.
//!
//! ```
//! use cluster::{BspApp, Cluster, CommModel, NodePolicy};
//! use simproc::engine::Chunk;
//!
//! // 2 nodes, 3 supersteps, balanced work.
//! let app = BspApp::uniform(2, 3, || vec![Chunk::new(2_000_000, 130_000, 56_000)]);
//! let mut cluster = Cluster::new(2, NodePolicy::Default, CommModel::default());
//! let outcome = cluster.run_program(&mut &app);
//! assert!(outcome.seconds > 0.0 && outcome.joules > 0.0);
//! ```
//!
//! # Scheduler architecture
//!
//! The driving plane is a discrete-event scheduler, not a lockstep
//! loop. Everything that advances virtual time implements one
//! object-safe trait, [`EventSource`] — *"when is your next observable
//! event, and advance yourself to a timestamp"* — and
//! [`sched::run_event_loop`] drives any mix of sources from a single
//! global min-heap keyed on `(timestamp, source index)`. Three source
//! kinds cover a fleet:
//!
//! * **Compute** — a node draining its superstep workload. Events are
//!   the engine's runway horizons (`SimProcessor::next_event_ns`:
//!   chunk retirements, workload wake-ups); each advance hands the
//!   span to the shared `cuttlefish::controller::drive_quanta` loop,
//!   which fast-forwards controller-certified busy stretches.
//! * **Daemon ticks** — a parked node's `Tinv` stream. The controller's
//!   `idle_quanta_capacity` answer *is* the event query: the next real
//!   event is the first quantum it does not certify as uneventful.
//! * **Windows** — a tick stream clipped to a barrier or exchange
//!   deadline.
//!
//! Fleet cost is therefore bound by the number of *events*, not
//! nodes × quanta. The historical per-quantum loop survives as
//! [`SteppingMode::Lockstep`] — a reference "cycle-box" selectable per
//! [`Cluster`] (and declaratively per scenario via the bench harness) —
//! and the equivalence suites hold the two modes to bit identity
//! across every shipped governor: sources advance in timestamp slices,
//! and every analytic advance in the stack is a per-quantum replay of
//! the stepped arithmetic, hence exact under any slicing.
//!
//! Programs enter through [`Cluster::run_program`] over a
//! [`BspProgram`] (superstep → per-node workload); [`BspApp`] chunk
//! lists and replicated per-node workloads ([`ReplicatedProgram`]) are
//! both expressed in that shape.

pub mod bsp;
pub mod node;
pub mod sched;

pub use bsp::{BspApp, BspOutcome, BspProgram, CommModel, QuantaSplit, ReplicatedProgram};
pub use node::{Cluster, NodePolicy};
pub use sched::{EventSource, SteppingMode};
