//! Cluster simulation: N simulated packages in bulk-synchronous
//! lockstep, each with its own frequency controller.

use crate::bsp::{BspApp, BspOutcome, CommModel};
use cuttlefish::controller::FrequencyController;
use simproc::engine::{Chunk, Workload};
use simproc::freq::{MachineSpec, HASWELL_2650V3};
use simproc::SimProcessor;
use std::collections::BTreeMap;
use tasking::{Region, WorkSharingScheduler};

// The per-node frequency policy and the controllers it builds live in
// `cuttlefish::controller`, shared with the evaluation harness and the
// examples; `cluster` re-exports the policy for convenience.
pub use cuttlefish::controller::NodePolicy;

struct Node {
    proc: SimProcessor,
    ctrl: Box<dyn FrequencyController>,
    busy_s: f64,
}

/// Nothing to run: models barrier wait / communication windows (cores
/// idle; the package still burns its floor power; per-node Cuttlefish
/// daemons skip the interval because no instructions retire). Its
/// `next_wake_ns` is `None` — the engine may fast-forward straight to
/// the barrier timestamp.
struct Idle;
impl Workload for Idle {
    fn next_chunk(&mut self, _c: usize, _t: u64) -> Option<Chunk> {
        None
    }
    fn is_done(&self) -> bool {
        true
    }
    fn next_wake_ns(&self, _now: u64) -> Option<u64> {
        None
    }
}

/// A simulated cluster.
pub struct Cluster {
    nodes: Vec<Node>,
    comm: CommModel,
    /// Fast-forward parked nodes across barrier/exchange windows via
    /// `SimProcessor::advance_idle` (on by default). Turning it off
    /// forces the historical quantum-by-quantum idle stepping — the
    /// reference path the equivalence tests and before/after stepping
    /// measurements compare against.
    event_stepping: bool,
}

impl Cluster {
    /// Build `n_nodes` Haswell nodes under `policy` — a thin
    /// convenience over [`Cluster::with_nodes`], the one constructor.
    pub fn new(n_nodes: usize, policy: NodePolicy, comm: CommModel) -> Self {
        assert!(n_nodes > 0);
        Self::with_nodes(
            (0..n_nodes)
                .map(|_| (HASWELL_2650V3.clone(), policy.clone()))
                .collect(),
            comm,
        )
    }

    /// The cluster constructor: each node gets its own machine spec
    /// and frequency policy — uniform fleets, mixed fleets, straggler
    /// nodes, per-node governor comparisons (the §4.6 imbalance study
    /// wants slow *hardware*, not just more chunks). Declarative
    /// callers go through `bench::scenario::Scenario`, which feeds its
    /// `nodes` list straight in here.
    pub fn with_nodes(nodes: Vec<(MachineSpec, NodePolicy)>, comm: CommModel) -> Self {
        assert!(!nodes.is_empty());
        // Specs may differ in cores and frequency domains, but the
        // cluster shares one virtual timeline: exchange windows and
        // barrier timestamps are expressed in whole quanta, so every
        // node must tick at the same quantum.
        assert!(
            nodes
                .iter()
                .all(|(s, _)| s.quantum_ns == nodes[0].0.quantum_ns),
            "heterogeneous nodes must share one quantum_ns"
        );
        let nodes = nodes
            .into_iter()
            .map(|(spec, policy)| {
                let mut proc = SimProcessor::new(spec);
                let ctrl = policy.build(&mut proc);
                Node {
                    proc,
                    ctrl,
                    busy_s: 0.0,
                }
            })
            .collect();
        Cluster {
            nodes,
            comm,
            event_stepping: true,
        }
    }

    /// Toggle idle fast-forwarding (see the field docs); returns `self`
    /// for builder-style use in tests.
    pub fn set_event_stepping(&mut self, on: bool) -> &mut Self {
        self.event_stepping = on;
        self
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Per-node controller reports — one uniform path across policies:
    /// every controller reports what it has learned. Static controllers
    /// yield one synthetic whole-run range; a Cuttlefish node's report
    /// is empty until its daemon clears warm-up.
    pub fn reports(&self) -> Vec<Vec<cuttlefish::daemon::NodeReport>> {
        self.nodes.iter().map(|n| n.ctrl.report()).collect()
    }

    /// Per-node resolved-optimum fractions, through the same
    /// [`FrequencyController::resolved_fractions`] path single-node
    /// consumers use (keeps the definition canonical if it ever gains
    /// e.g. occurrence weighting).
    pub fn resolved_fractions(&self) -> Vec<(f64, f64)> {
        self.nodes
            .iter()
            .map(|n| n.ctrl.resolved_fractions())
            .collect()
    }

    /// Per-operating-point residency summed over all nodes, keyed by
    /// `(core, uncore)` deci-GHz.
    pub fn residency(&self) -> BTreeMap<(u32, u32), u64> {
        let mut merged: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        for node in &self.nodes {
            for (&point, &ns) in node.proc.frequency_residency() {
                *merged.entry(point).or_default() += ns;
            }
        }
        merged
    }

    fn step_node(node: &mut Node, wl: &mut dyn Workload) {
        node.proc.step(wl);
        node.ctrl.on_quantum(&mut node.proc);
    }

    /// Run one node's workload to drain — the compute phase of a
    /// superstep. With event stepping on this is the shared
    /// [`cuttlefish::controller::drive`] loop, which fast-forwards both
    /// parked stretches and busy steady-state stretches the controller
    /// certifies; off, it is the historical quantum-by-quantum
    /// reference both must match bit for bit.
    fn drain_node(node: &mut Node, wl: &mut dyn Workload, event_stepping: bool) {
        if event_stepping {
            cuttlefish::controller::drive_quanta(&mut node.proc, wl, node.ctrl.as_mut(), u64::MAX);
        } else {
            while !node.proc.workload_drained(wl) {
                Self::step_node(node, wl);
            }
        }
    }

    /// Idle one parked node for exactly `quanta` quanta, fast-forwarding
    /// every stretch the controller declares uneventful and stepping for
    /// real at the controller's scheduled events (`Tinv` ticks, firmware
    /// ramp-down quanta) — numerically identical to `quanta` plain
    /// `step(&mut Idle)`/`on_quantum` rounds.
    fn idle_for(node: &mut Node, quanta: u64, event_stepping: bool) {
        let mut left = quanta;
        while left > 0 {
            let k = if event_stepping {
                node.ctrl.idle_quanta_capacity(&node.proc).min(left)
            } else {
                0
            };
            if k == 0 {
                Self::step_node(node, &mut Idle);
                left -= 1;
            } else {
                node.proc.advance_idle_quanta(k);
                node.ctrl.note_idle_quanta(k);
                left -= k;
            }
        }
    }

    /// Barrier phase: early finishers idle until the slowest node
    /// arrives (no slack reclamation: §4.6's limitation). Returns the
    /// per-node waits charged, in node order.
    fn barrier(&mut self, finish_ns: &[u64]) -> Vec<f64> {
        let barrier_ns = *finish_ns.iter().max().expect("nodes exist");
        let event_stepping = self.event_stepping;
        self.nodes
            .iter_mut()
            .zip(finish_ns)
            .map(|(node, &t)| {
                // One saturating computation per node: the wait itself,
                // and the whole quanta that cover it (the clock
                // overshoots the barrier to the next boundary, exactly
                // as per-quantum stepping always has).
                let wait_ns = barrier_ns.saturating_sub(t);
                let quanta = wait_ns.div_ceil(node.proc.spec().quantum_ns);
                Self::idle_for(node, quanta, event_stepping);
                wait_ns as f64 * 1e-9
            })
            .collect()
    }

    /// Exchange phase: all nodes busy-idle on the NIC for one α–β
    /// exchange window.
    fn exchange(&mut self) {
        let quantum_s = self.nodes[0].proc.spec().quantum_ns as f64 * 1e-9;
        let comm_quanta = (self.comm.exchange_seconds() / quantum_s).ceil() as u64;
        let event_stepping = self.event_stepping;
        for node in self.nodes.iter_mut() {
            Self::idle_for(node, comm_quanta, event_stepping);
        }
    }

    fn outcome(&self, barrier_wait_s: f64, node_barrier_wait_s: Vec<f64>) -> BspOutcome {
        let node_joules: Vec<f64> = self
            .nodes
            .iter()
            .map(|n| n.proc.total_energy_joules())
            .collect();
        let seconds = self
            .nodes
            .iter()
            .map(|n| n.proc.now_seconds())
            .fold(0.0, f64::max);
        BspOutcome {
            seconds,
            joules: node_joules.iter().sum(),
            instructions: self.nodes.iter().map(|n| n.proc.total_instructions()).sum(),
            node_busy_s: self.nodes.iter().map(|n| n.busy_s).collect(),
            node_joules,
            barrier_wait_s,
            node_barrier_wait_s,
            stepped_quanta: self.nodes.iter().map(|n| n.proc.stepped_quanta()).sum(),
            idle_advanced_quanta: self
                .nodes
                .iter()
                .map(|n| n.proc.idle_advanced_quanta())
                .sum(),
            busy_advanced_quanta: self
                .nodes
                .iter()
                .map(|n| n.proc.busy_advanced_quanta())
                .sum(),
            total_quanta: self.nodes.iter().map(|n| n.proc.total_quanta()).sum(),
        }
    }

    /// Run one independent workload per node — the scenario-grid shape
    /// "the same benchmark replicated over N nodes": each node executes
    /// `make(node, n_cores)` to completion at its own pace, then all
    /// nodes synchronize at a final barrier and pay one exchange.
    pub fn run_replicated<F>(&mut self, mut make: F) -> BspOutcome
    where
        F: FnMut(usize, usize) -> Box<dyn Workload>,
    {
        let mut finish_ns: Vec<u64> = Vec::with_capacity(self.nodes.len());
        let event_stepping = self.event_stepping;
        for (idx, node) in self.nodes.iter_mut().enumerate() {
            let mut wl = make(idx, node.proc.n_cores());
            let t0 = node.proc.now_ns();
            Self::drain_node(node, wl.as_mut(), event_stepping);
            let t1 = node.proc.now_ns();
            node.busy_s += (t1 - t0) as f64 * 1e-9;
            finish_ns.push(t1);
        }
        let node_waits = self.barrier(&finish_ns);
        self.exchange();
        self.outcome(node_waits.iter().sum(), node_waits)
    }

    /// Execute the app to completion; nodes run their local regions
    /// work-sharing, synchronize each superstep, then pay the exchange.
    pub fn run(&mut self, app: &BspApp) -> BspOutcome {
        assert_eq!(app.n_nodes(), self.nodes.len(), "app/cluster size mismatch");
        let mut barrier_wait_s = 0.0;
        let mut node_barrier_wait_s = vec![0.0; self.nodes.len()];

        for step in &app.steps {
            // Phase 1: local computation, each node at its own pace.
            let mut finish_ns: Vec<u64> = Vec::with_capacity(self.nodes.len());
            let event_stepping = self.event_stepping;
            for (node, chunks) in self.nodes.iter_mut().zip(step) {
                let n_cores = node.proc.n_cores();
                let region = Region::statically_partitioned(chunks.clone(), n_cores);
                let mut sched = WorkSharingScheduler::new(vec![region], n_cores);
                let t0 = node.proc.now_ns();
                Self::drain_node(node, &mut sched, event_stepping);
                let t1 = node.proc.now_ns();
                node.busy_s += (t1 - t0) as f64 * 1e-9;
                finish_ns.push(t1);
            }

            // Phases 2–3: barrier, then the exchange.
            let waits = self.barrier(&finish_ns);
            barrier_wait_s += waits.iter().sum::<f64>();
            for (acc, w) in node_barrier_wait_s.iter_mut().zip(&waits) {
                *acc += w;
            }
            self.exchange();
        }

        self.outcome(barrier_wait_s, node_barrier_wait_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuttlefish::Config;
    use simproc::perf::CostProfile;

    fn heat_chunks() -> Vec<Chunk> {
        // One superstep of a memory-bound stencil: ~0.4 s per node
        // (enough supersteps of this give the per-node daemons time to
        // finish their exploration and run at the optimum).
        // TIPI 0.066 — centred in its 0.064–0.068 slab (a boundary
        // value would flap between slabs and look like perpetual
        // transitions to the profiler).
        (0..120)
            .map(|_| {
                Chunk::new(30_000_000, 1_390_000, 590_000)
                    .with_profile(CostProfile::new(0.55, 12.0))
            })
            .collect()
    }

    fn cuttlefish_cfg() -> Config {
        // Short warm-up, and the idle guard enabled: BSP supersteps end
        // in barrier waits whose boundary windows would otherwise
        // poison the JPI averages.
        Config {
            warmup_ns: 500_000_000,
            idle_guard: Some(0.3),
            ..Config::default()
        }
    }

    #[test]
    fn balanced_cluster_saves_like_single_node() {
        let app = BspApp::uniform(2, 40, heat_chunks);
        let base = Cluster::new(2, NodePolicy::Default, CommModel::default()).run(&app);
        let tuned = Cluster::new(
            2,
            NodePolicy::Cuttlefish(cuttlefish_cfg()),
            CommModel::default(),
        )
        .run(&app);
        let saving = 1.0 - tuned.joules / base.joules;
        assert!(
            saving > 0.12,
            "per-node Cuttlefish should save like single-node, got {:.1}%",
            saving * 100.0
        );
        let slowdown = tuned.seconds / base.seconds - 1.0;
        assert!(slowdown < 0.08, "slowdown {:.3}", slowdown);
    }

    #[test]
    fn nodes_tune_independently() {
        let app = BspApp::uniform(3, 40, heat_chunks);
        let mut cluster = Cluster::new(
            3,
            NodePolicy::Cuttlefish(cuttlefish_cfg()),
            CommModel::default(),
        );
        cluster.run(&app);
        for report in cluster.reports() {
            assert!(
                report.iter().any(|r| r.cf_opt.is_some()),
                "every node's daemon must have resolved its MAP"
            );
        }
    }

    #[test]
    fn imbalance_creates_barrier_wait_but_no_slack_reclamation() {
        // §4.6: Cuttlefish "cannot regulate the processor frequencies to
        // mitigate the workload imbalance between the processes". The
        // fast nodes wait at the barrier; wall time is set by the slow
        // node under both policies.
        let app = BspApp::imbalanced(2, 20, 0, 2, heat_chunks);
        let base = Cluster::new(2, NodePolicy::Default, CommModel::default()).run(&app);
        let tuned = Cluster::new(
            2,
            NodePolicy::Cuttlefish(cuttlefish_cfg()),
            CommModel::default(),
        )
        .run(&app);
        assert!(base.barrier_wait_s > 1.0, "imbalance must create waiting");
        assert!(tuned.barrier_wait_s > 1.0);
        // Wall time tracks the slow node in both cases.
        let slowdown = tuned.seconds / base.seconds - 1.0;
        assert!(slowdown.abs() < 0.08, "slowdown {slowdown:.3}");
        // Energy still improves (each node tunes its own MAP)...
        assert!(tuned.joules < base.joules);
        // ...but the fast node's energy during its wait is floor power,
        // not a just-in-time slowdown: its busy time is far below the
        // slow node's.
        assert!(tuned.node_busy_s[1] < tuned.node_busy_s[0] * 0.7);
    }

    #[test]
    fn exchange_time_is_charged() {
        let comm = CommModel {
            alpha_s: 0.0,
            bytes: 120.0e6,
            bandwidth: 12.0e9, // 10 ms per exchange
        };
        let app = BspApp::uniform(2, 10, heat_chunks);
        let with_comm = Cluster::new(2, NodePolicy::Default, comm).run(&app);
        let no_comm = Cluster::new(
            2,
            NodePolicy::Default,
            CommModel {
                alpha_s: 0.0,
                bytes: 0.0,
                bandwidth: 1.0,
            },
        )
        .run(&app);
        let diff = with_comm.seconds - no_comm.seconds;
        assert!(
            (0.08..0.15).contains(&diff),
            "10 supersteps x 10 ms exchange ~ 0.1 s, got {diff:.3}"
        );
    }
}
