//! Cluster simulation: N simulated packages executing bulk-synchronous
//! supersteps, each with its own frequency controller.
//!
//! The driving plane is the discrete-event scheduler in
//! [`crate::sched`]: compute phases, daemon tick streams, and
//! barrier/exchange windows are all [`EventSource`]s driven from one
//! global min-heap ([`SteppingMode::EventDriven`], the default), with
//! the historical per-quantum lockstep loop retained as the bit-exact
//! reference ([`SteppingMode::Lockstep`]).

use crate::bsp::{BspOutcome, BspProgram, CommModel, QuantaSplit};
use crate::sched::{run_event_loop, EventSource, SteppingMode};
use cuttlefish::controller::FrequencyController;
use simproc::engine::{Chunk, Workload};
use simproc::freq::{MachineSpec, HASWELL_2650V3};
use simproc::SimProcessor;
use std::collections::BTreeMap;

// The per-node frequency policy and the controllers it builds live in
// `cuttlefish::controller`, shared with the evaluation harness and the
// examples; `cluster` re-exports the policy for convenience.
pub use cuttlefish::controller::NodePolicy;

struct Node {
    proc: SimProcessor,
    ctrl: Box<dyn FrequencyController>,
    busy_s: f64,
}

/// Nothing to run: models barrier wait / communication windows (cores
/// idle; the package still burns its floor power; per-node Cuttlefish
/// daemons skip the interval because no instructions retire). Its
/// `next_wake_ns` is `None` — the engine may fast-forward straight to
/// the barrier timestamp.
struct Idle;
impl Workload for Idle {
    fn next_chunk(&mut self, _c: usize, _t: u64) -> Option<Chunk> {
        None
    }
    fn is_done(&self) -> bool {
        true
    }
    fn next_wake_ns(&self, _now: u64) -> Option<u64> {
        None
    }
}

/// A node draining a superstep workload — the compute-phase
/// [`EventSource`]. Its events are the engine's runway horizons
/// (frequency transitions, workload wake-ups, controller ticks); each
/// `advance` hands the span to the shared
/// [`cuttlefish::controller::drive_quanta`] loop, whose per-quantum
/// replays make timestamp slicing exact (sched contract rule 2).
struct ComputeSource<'a> {
    node: &'a mut Node,
    wl: &'a mut dyn Workload,
}

impl EventSource for ComputeSource<'_> {
    fn next_event_ns(&self, _now_ns: u64) -> Option<u64> {
        if self.node.proc.workload_drained(&*self.wl) {
            return None;
        }
        let now = self.node.proc.now_ns();
        let quantum = self.node.proc.spec().quantum_ns;
        // The engine's own horizon where it has one; otherwise (or when
        // it answers "right now") fall back to one quantum so the heap
        // always makes progress.
        let horizon = self.node.proc.next_event_ns(&*self.wl).unwrap_or(0);
        Some(horizon.max(now + quantum))
    }

    fn advance(&mut self, to_ns: u64) {
        let now = self.node.proc.now_ns();
        let quantum = self.node.proc.spec().quantum_ns;
        let budget = (to_ns.saturating_sub(now)).div_ceil(quantum).max(1);
        cuttlefish::controller::drive_quanta(
            &mut self.node.proc,
            self.wl,
            self.node.ctrl.as_mut(),
            budget,
        );
    }
}

/// A parked node's daemon tick stream — the `Tinv` [`EventSource`].
/// Its next event is the first quantum the controller does *not*
/// certify as uneventful (the daemon's next scheduled tick, a firmware
/// ramp-down quantum, …); `advance` fast-forwards the certified
/// stretch and steps the tick quantum for real. Unbounded on its own:
/// clip it with [`WindowSource`] to terminate.
struct TickSource<'a> {
    node: &'a mut Node,
}

impl TickSource<'_> {
    fn now_ns(&self) -> u64 {
        self.node.proc.now_ns()
    }
}

impl EventSource for TickSource<'_> {
    fn next_event_ns(&self, _now_ns: u64) -> Option<u64> {
        let quantum = self.node.proc.spec().quantum_ns;
        let certified = self.node.ctrl.idle_quanta_capacity(&self.node.proc);
        // The quantum after the certified stretch must step for real.
        Some(
            self.now_ns()
                .saturating_add(certified.saturating_add(1).saturating_mul(quantum)),
        )
    }

    fn advance(&mut self, to_ns: u64) {
        let quantum = self.node.proc.spec().quantum_ns;
        let quanta = to_ns.saturating_sub(self.now_ns()) / quantum;
        Cluster::idle_for(self.node, quanta, SteppingMode::EventDriven);
    }
}

/// A daemon tick stream clipped to a window deadline — the
/// barrier-wait / exchange [`EventSource`]. Exhausted once the node's
/// clock reaches `end_ns` (grid-aligned, so the clip is exact).
struct WindowSource<'a> {
    ticks: TickSource<'a>,
    end_ns: u64,
}

impl EventSource for WindowSource<'_> {
    fn next_event_ns(&self, now_ns: u64) -> Option<u64> {
        if self.ticks.now_ns() >= self.end_ns {
            return None;
        }
        Some(self.ticks.next_event_ns(now_ns)?.min(self.end_ns))
    }

    fn advance(&mut self, to_ns: u64) {
        self.ticks.advance(to_ns.min(self.end_ns));
    }
}

/// A simulated cluster.
pub struct Cluster {
    nodes: Vec<Node>,
    comm: CommModel,
    /// How virtual time advances — see [`SteppingMode`]. Event-driven
    /// by default; `Lockstep` forces the historical quantum-by-quantum
    /// loop the equivalence tests and before/after stepping
    /// measurements compare against.
    stepping: SteppingMode,
}

impl Cluster {
    /// Build `n_nodes` Haswell nodes under `policy` — a thin
    /// convenience over [`Cluster::with_nodes`], the one constructor.
    pub fn new(n_nodes: usize, policy: NodePolicy, comm: CommModel) -> Self {
        assert!(n_nodes > 0);
        Self::with_nodes(
            (0..n_nodes)
                .map(|_| (HASWELL_2650V3.clone(), policy.clone()))
                .collect(),
            comm,
        )
    }

    /// The cluster constructor: each node gets its own machine spec
    /// and frequency policy — uniform fleets, mixed fleets, straggler
    /// nodes, per-node governor comparisons (the §4.6 imbalance study
    /// wants slow *hardware*, not just more chunks). Declarative
    /// callers go through `bench::scenario::Scenario`, which feeds its
    /// `nodes` list straight in here.
    pub fn with_nodes(nodes: Vec<(MachineSpec, NodePolicy)>, comm: CommModel) -> Self {
        assert!(!nodes.is_empty());
        // Specs may differ in cores and frequency domains, but the
        // cluster shares one virtual timeline: exchange windows and
        // barrier timestamps are expressed in whole quanta, so every
        // node must tick at the same quantum.
        assert!(
            nodes
                .iter()
                .all(|(s, _)| s.quantum_ns == nodes[0].0.quantum_ns),
            "heterogeneous nodes must share one quantum_ns"
        );
        let nodes = nodes
            .into_iter()
            .map(|(spec, policy)| {
                let mut proc = SimProcessor::new(spec);
                let ctrl = policy.build(&mut proc);
                Node {
                    proc,
                    ctrl,
                    busy_s: 0.0,
                }
            })
            .collect();
        Cluster {
            nodes,
            comm,
            stepping: SteppingMode::default(),
        }
    }

    /// Select the driving mode (see the field docs); returns `self`
    /// for builder-style use.
    pub fn set_stepping(&mut self, mode: SteppingMode) -> &mut Self {
        self.stepping = mode;
        self
    }

    /// The cluster's current driving mode.
    pub fn stepping(&self) -> SteppingMode {
        self.stepping
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Per-node controller reports — one uniform path across policies:
    /// every controller reports what it has learned. Static controllers
    /// yield one synthetic whole-run range; a Cuttlefish node's report
    /// is empty until its daemon clears warm-up.
    pub fn reports(&self) -> Vec<Vec<cuttlefish::daemon::NodeReport>> {
        self.nodes.iter().map(|n| n.ctrl.report()).collect()
    }

    /// Per-node resolved-optimum fractions, through the same
    /// [`FrequencyController::resolved_fractions`] path single-node
    /// consumers use (keeps the definition canonical if it ever gains
    /// e.g. occurrence weighting).
    pub fn resolved_fractions(&self) -> Vec<(f64, f64)> {
        self.nodes
            .iter()
            .map(|n| n.ctrl.resolved_fractions())
            .collect()
    }

    /// Per-operating-point residency summed over all nodes, keyed by
    /// `(core, uncore)` deci-GHz.
    pub fn residency(&self) -> BTreeMap<(u32, u32), u64> {
        let mut merged: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        for node in &self.nodes {
            for (&point, &ns) in node.proc.frequency_residency() {
                *merged.entry(point).or_default() += ns;
            }
        }
        merged
    }

    fn step_node(node: &mut Node, wl: &mut dyn Workload) {
        node.proc.step(wl);
        node.ctrl.on_quantum(&mut node.proc);
    }

    /// Idle one parked node for exactly `quanta` quanta, fast-forwarding
    /// every stretch the controller declares uneventful and stepping for
    /// real at the controller's scheduled events (`Tinv` ticks, firmware
    /// ramp-down quanta) — numerically identical to `quanta` plain
    /// `step(&mut Idle)`/`on_quantum` rounds, which is what `Lockstep`
    /// runs instead.
    fn idle_for(node: &mut Node, quanta: u64, stepping: SteppingMode) {
        let mut left = quanta;
        while left > 0 {
            let k = match stepping {
                SteppingMode::EventDriven => node.ctrl.idle_quanta_capacity(&node.proc).min(left),
                SteppingMode::Lockstep => 0,
            };
            if k == 0 {
                Self::step_node(node, &mut Idle);
                left -= 1;
            } else {
                node.proc.advance_idle_quanta(k);
                node.ctrl.note_idle_quanta(k);
                left -= k;
            }
        }
    }

    /// Compute phase: every node drains its superstep workload. Event
    /// mode drives one [`ComputeSource`] per node from the global heap;
    /// lockstep steps each node quantum by quantum, the historical
    /// reference (nodes are independent between barriers, so draining
    /// them one after another is the same schedule).
    fn compute(&mut self, workloads: &mut [Box<dyn Workload>]) {
        match self.stepping {
            SteppingMode::Lockstep => {
                for (node, wl) in self.nodes.iter_mut().zip(workloads.iter_mut()) {
                    while !node.proc.workload_drained(wl.as_ref()) {
                        Self::step_node(node, wl.as_mut());
                    }
                }
            }
            SteppingMode::EventDriven => {
                let mut sources: Vec<ComputeSource> = self
                    .nodes
                    .iter_mut()
                    .zip(workloads.iter_mut())
                    .map(|(node, wl)| ComputeSource {
                        node,
                        wl: wl.as_mut(),
                    })
                    .collect();
                let mut dyns: Vec<&mut dyn EventSource> = sources
                    .iter_mut()
                    .map(|s| s as &mut dyn EventSource)
                    .collect();
                run_event_loop(&mut dyns);
            }
        }
    }

    /// Idle every node up to its entry in `end_ns` (absolute,
    /// grid-aligned) — the shared engine behind barrier waits and
    /// exchange windows. Event mode drives one [`WindowSource`] per
    /// node from the global heap.
    fn idle_windows(&mut self, end_ns: &[u64]) {
        match self.stepping {
            SteppingMode::Lockstep => {
                for (node, &end) in self.nodes.iter_mut().zip(end_ns) {
                    let quanta =
                        end.saturating_sub(node.proc.now_ns()) / node.proc.spec().quantum_ns;
                    Self::idle_for(node, quanta, SteppingMode::Lockstep);
                }
            }
            SteppingMode::EventDriven => {
                let mut sources: Vec<WindowSource> = self
                    .nodes
                    .iter_mut()
                    .zip(end_ns)
                    .map(|(node, &end)| WindowSource {
                        ticks: TickSource { node },
                        end_ns: end,
                    })
                    .collect();
                let mut dyns: Vec<&mut dyn EventSource> = sources
                    .iter_mut()
                    .map(|s| s as &mut dyn EventSource)
                    .collect();
                run_event_loop(&mut dyns);
            }
        }
    }

    /// Barrier phase: early finishers idle until the slowest node
    /// arrives (no slack reclamation: §4.6's limitation). Returns the
    /// per-node waits charged, in node order.
    fn barrier(&mut self, finish_ns: &[u64]) -> Vec<f64> {
        let barrier_ns = *finish_ns.iter().max().expect("nodes exist");
        // Node clocks live on the shared quantum grid, so every node's
        // wait is a whole number of quanta ending exactly at the
        // barrier timestamp.
        self.idle_windows(&vec![barrier_ns; self.nodes.len()]);
        finish_ns
            .iter()
            .map(|&t| barrier_ns.saturating_sub(t) as f64 * 1e-9)
            .collect()
    }

    /// Exchange phase: all nodes busy-idle on the NIC for one α–β
    /// exchange window.
    fn exchange(&mut self) {
        let quantum_ns = self.nodes[0].proc.spec().quantum_ns;
        let quantum_s = quantum_ns as f64 * 1e-9;
        let comm_quanta = (self.comm.exchange_seconds() / quantum_s).ceil() as u64;
        let end_ns: Vec<u64> = self
            .nodes
            .iter()
            .map(|n| n.proc.now_ns() + comm_quanta * quantum_ns)
            .collect();
        self.idle_windows(&end_ns);
    }

    fn outcome(&self, barrier_wait_s: f64, node_barrier_wait_s: Vec<f64>) -> BspOutcome {
        let node_joules: Vec<f64> = self
            .nodes
            .iter()
            .map(|n| n.proc.total_energy_joules())
            .collect();
        let seconds = self
            .nodes
            .iter()
            .map(|n| n.proc.now_seconds())
            .fold(0.0, f64::max);
        let node_quanta: Vec<QuantaSplit> = self
            .nodes
            .iter()
            .map(|n| QuantaSplit {
                stepped: n.proc.stepped_quanta(),
                idle_advanced: n.proc.idle_advanced_quanta(),
                busy_advanced: n.proc.busy_advanced_quanta(),
                total: n.proc.total_quanta(),
            })
            .collect();
        BspOutcome {
            seconds,
            joules: node_joules.iter().sum(),
            instructions: self.nodes.iter().map(|n| n.proc.total_instructions()).sum(),
            node_busy_s: self.nodes.iter().map(|n| n.busy_s).collect(),
            node_joules,
            barrier_wait_s,
            node_barrier_wait_s,
            stepped_quanta: node_quanta.iter().map(|q| q.stepped).sum(),
            idle_advanced_quanta: node_quanta.iter().map(|q| q.idle_advanced).sum(),
            busy_advanced_quanta: node_quanta.iter().map(|q| q.busy_advanced).sum(),
            total_quanta: node_quanta.iter().map(|q| q.total).sum(),
            node_quanta,
        }
    }

    /// Execute a bulk-synchronous program to completion — the one
    /// entry point. Per superstep: compute (each node drains the
    /// workload `program` builds for it), barrier, exchange; every
    /// phase is driven per the cluster's [`SteppingMode`].
    pub fn run_program<P: BspProgram + ?Sized>(&mut self, program: &mut P) -> BspOutcome {
        assert_eq!(
            program.n_nodes(),
            self.nodes.len(),
            "program/cluster size mismatch"
        );
        let mut barrier_wait_s = 0.0;
        let mut node_barrier_wait_s = vec![0.0; self.nodes.len()];

        for step in 0..program.n_steps() {
            // Phase 1: local computation, each node at its own pace.
            let t0: Vec<u64> = self.nodes.iter().map(|n| n.proc.now_ns()).collect();
            let mut workloads: Vec<Box<dyn Workload>> = self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, n)| program.workload(step, i, n.proc.n_cores()))
                .collect();
            self.compute(&mut workloads);
            let finish_ns: Vec<u64> = self.nodes.iter().map(|n| n.proc.now_ns()).collect();
            for (node, (&t0, &t1)) in self.nodes.iter_mut().zip(t0.iter().zip(&finish_ns)) {
                node.busy_s += (t1 - t0) as f64 * 1e-9;
            }

            // Phases 2–3: barrier, then the exchange.
            let waits = self.barrier(&finish_ns);
            barrier_wait_s += waits.iter().sum::<f64>();
            for (acc, w) in node_barrier_wait_s.iter_mut().zip(&waits) {
                *acc += w;
            }
            self.exchange();
        }

        self.outcome(barrier_wait_s, node_barrier_wait_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bsp::{BspApp, ReplicatedProgram};
    use cuttlefish::Config;
    use simproc::perf::CostProfile;

    fn heat_chunks() -> Vec<Chunk> {
        // One superstep of a memory-bound stencil: ~0.4 s per node
        // (enough supersteps of this give the per-node daemons time to
        // finish their exploration and run at the optimum).
        // TIPI 0.066 — centred in its 0.064–0.068 slab (a boundary
        // value would flap between slabs and look like perpetual
        // transitions to the profiler).
        (0..120)
            .map(|_| {
                Chunk::new(30_000_000, 1_390_000, 590_000)
                    .with_profile(CostProfile::new(0.55, 12.0))
            })
            .collect()
    }

    fn cuttlefish_cfg() -> Config {
        // Short warm-up, and the idle guard enabled: BSP supersteps end
        // in barrier waits whose boundary windows would otherwise
        // poison the JPI averages.
        Config {
            warmup_ns: 500_000_000,
            idle_guard: Some(0.3),
            ..Config::default()
        }
    }

    #[test]
    fn balanced_cluster_saves_like_single_node() {
        let app = BspApp::uniform(2, 40, heat_chunks);
        let base =
            Cluster::new(2, NodePolicy::Default, CommModel::default()).run_program(&mut &app);
        let tuned = Cluster::new(
            2,
            NodePolicy::Cuttlefish(cuttlefish_cfg()),
            CommModel::default(),
        )
        .run_program(&mut &app);
        let saving = 1.0 - tuned.joules / base.joules;
        assert!(
            saving > 0.12,
            "per-node Cuttlefish should save like single-node, got {:.1}%",
            saving * 100.0
        );
        let slowdown = tuned.seconds / base.seconds - 1.0;
        assert!(slowdown < 0.08, "slowdown {:.3}", slowdown);
    }

    #[test]
    fn nodes_tune_independently() {
        let app = BspApp::uniform(3, 40, heat_chunks);
        let mut cluster = Cluster::new(
            3,
            NodePolicy::Cuttlefish(cuttlefish_cfg()),
            CommModel::default(),
        );
        cluster.run_program(&mut &app);
        for report in cluster.reports() {
            assert!(
                report.iter().any(|r| r.cf_opt.is_some()),
                "every node's daemon must have resolved its MAP"
            );
        }
    }

    #[test]
    fn imbalance_creates_barrier_wait_but_no_slack_reclamation() {
        // §4.6: Cuttlefish "cannot regulate the processor frequencies to
        // mitigate the workload imbalance between the processes". The
        // fast nodes wait at the barrier; wall time is set by the slow
        // node under both policies.
        let app = BspApp::imbalanced(2, 20, 0, 2, heat_chunks);
        let base =
            Cluster::new(2, NodePolicy::Default, CommModel::default()).run_program(&mut &app);
        let tuned = Cluster::new(
            2,
            NodePolicy::Cuttlefish(cuttlefish_cfg()),
            CommModel::default(),
        )
        .run_program(&mut &app);
        assert!(base.barrier_wait_s > 1.0, "imbalance must create waiting");
        assert!(tuned.barrier_wait_s > 1.0);
        // Wall time tracks the slow node in both cases.
        let slowdown = tuned.seconds / base.seconds - 1.0;
        assert!(slowdown.abs() < 0.08, "slowdown {slowdown:.3}");
        // Energy still improves (each node tunes its own MAP)...
        assert!(tuned.joules < base.joules);
        // ...but the fast node's energy during its wait is floor power,
        // not a just-in-time slowdown: its busy time is far below the
        // slow node's.
        assert!(tuned.node_busy_s[1] < tuned.node_busy_s[0] * 0.7);
    }

    #[test]
    fn exchange_time_is_charged() {
        let comm = CommModel {
            alpha_s: 0.0,
            bytes: 120.0e6,
            bandwidth: 12.0e9, // 10 ms per exchange
        };
        let app = BspApp::uniform(2, 10, heat_chunks);
        let with_comm = Cluster::new(2, NodePolicy::Default, comm).run_program(&mut &app);
        let no_comm = Cluster::new(
            2,
            NodePolicy::Default,
            CommModel {
                alpha_s: 0.0,
                bytes: 0.0,
                bandwidth: 1.0,
            },
        )
        .run_program(&mut &app);
        let diff = with_comm.seconds - no_comm.seconds;
        assert!(
            (0.08..0.15).contains(&diff),
            "10 supersteps x 10 ms exchange ~ 0.1 s, got {diff:.3}"
        );
    }

    #[test]
    fn node_quanta_split_accounts_for_every_quantum() {
        let app = BspApp::uniform(2, 6, heat_chunks);
        let mut cluster = Cluster::new(
            2,
            NodePolicy::Cuttlefish(cuttlefish_cfg()),
            CommModel::default(),
        );
        let out = cluster.run_program(&mut &app);
        assert_eq!(out.node_quanta.len(), 2);
        for q in &out.node_quanta {
            assert_eq!(q.total, q.stepped + q.idle_advanced + q.busy_advanced);
        }
        assert_eq!(
            out.total_quanta,
            out.node_quanta.iter().map(|q| q.total).sum::<u64>(),
            "the fleet sums must fold the per-node split"
        );
    }

    #[test]
    fn replicated_program_runs_one_replica_per_node() {
        let make = |chunks: Vec<Chunk>| {
            move |_node: usize, n_cores: usize| -> Box<dyn Workload> {
                let region = tasking::Region::statically_partitioned(chunks.clone(), n_cores);
                Box::new(tasking::WorkSharingScheduler::new(vec![region], n_cores))
            }
        };
        let duo = Cluster::new(2, NodePolicy::Default, CommModel::default())
            .run_program(&mut ReplicatedProgram::new(2, make(heat_chunks())));
        let solo = Cluster::new(1, NodePolicy::Default, CommModel::default())
            .run_program(&mut ReplicatedProgram::new(1, make(heat_chunks())));
        // Identical nodes run identical replicas: per-node accounting
        // doubles while the (synchronized) wall clock does not move.
        assert_eq!(duo.node_joules.len(), 2);
        assert_eq!(
            duo.instructions.to_bits(),
            (2.0 * solo.instructions).to_bits()
        );
        assert_eq!(duo.seconds.to_bits(), solo.seconds.to_bits());
        // And a second identical run reproduces it bit for bit.
        let again = Cluster::new(2, NodePolicy::Default, CommModel::default())
            .run_program(&mut ReplicatedProgram::new(2, make(heat_chunks())));
        assert_eq!(duo.joules.to_bits(), again.joules.to_bits());
        assert_eq!(duo.total_quanta, again.total_quanta);
    }

    #[test]
    fn stepping_mode_is_selected_through_the_enum() {
        let mut cluster = Cluster::new(1, NodePolicy::Default, CommModel::default());
        assert_eq!(cluster.stepping(), SteppingMode::EventDriven);
        cluster.set_stepping(SteppingMode::Lockstep);
        assert_eq!(cluster.stepping(), SteppingMode::Lockstep);
        cluster.set_stepping(SteppingMode::EventDriven);
        assert_eq!(cluster.stepping(), SteppingMode::EventDriven);
    }
}
