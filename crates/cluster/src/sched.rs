//! The cluster driving plane: one uniform event-source abstraction
//! and the global min-heap scheduler that drives it.
//!
//! Everything that advances virtual time in a fleet — a node draining
//! its superstep workload, a per-node daemon's `Tinv` tick stream, a
//! barrier or exchange window — is expressed as an [`EventSource`]:
//! "when is your next observable event, and advance yourself to a
//! timestamp". [`run_event_loop`] then drives any mix of sources from
//! one min-heap keyed on `(timestamp, source index)`, so fleet cost is
//! bound by the *event count* rather than nodes × quanta.
//!
//! # Contract
//!
//! For the heap to terminate and stay deterministic, a source must:
//!
//! 1. **Make progress**: after `advance(t)`, `next_event_ns` must
//!    return a timestamp strictly greater than `t` (or `None`).
//! 2. **Be exact under slicing**: `advance(a)` then `advance(b)` must
//!    leave the source in exactly the state one `advance(b)` would
//!    have — sources are driven in timestamp-sized slices, and the
//!    cluster equivalence suites hold the sliced schedule to bit
//!    identity with the monolithic per-quantum reference.
//! 3. **Be independent**: sources at the same heap round must not
//!    share mutable state; ties are broken by source index, and the
//!    outcome must not depend on that order.
//!
//! The `cluster` sources satisfy (2) because every analytic advance in
//! the stack (`SimProcessor::advance_idle_quanta` /
//! `advance_busy_quanta`, the controllers' `note_*` replays) is a
//! per-quantum replay of the stepped arithmetic, hence additive over
//! any split of the same quanta.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How a [`crate::Cluster`] advances virtual time. Serialized in
/// `Scenario` JSON by the bench harness (omitted when default), so any
/// grid cell can pin its driving mode declaratively.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SteppingMode {
    /// The reference "cycle-box": every node steps quantum by quantum,
    /// in lockstep between barriers. Linear in nodes × quanta; exists
    /// so the event-driven path has a bit-exact oracle to answer to.
    Lockstep,
    /// The global min-heap scheduler over [`EventSource`]s: parked
    /// stretches and controller-certified busy stretches are advanced
    /// analytically, so cost is bound by event count (the default).
    #[default]
    EventDriven,
}

impl SteppingMode {
    /// Stable wire name, used by the scenario/grid JSON codecs.
    pub fn as_str(self) -> &'static str {
        match self {
            SteppingMode::Lockstep => "lockstep",
            SteppingMode::EventDriven => "event-driven",
        }
    }

    /// Inverse of [`SteppingMode::as_str`].
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "lockstep" => Ok(SteppingMode::Lockstep),
            "event-driven" => Ok(SteppingMode::EventDriven),
            other => Err(format!(
                "unknown stepping mode `{other}` (expected `lockstep` or `event-driven`)"
            )),
        }
    }
}

/// An object-safe source of timestamped simulation events.
///
/// Implemented uniformly by compute phases (a node draining its
/// workload), daemon `Tinv` tick streams over parked nodes, and
/// barrier/exchange windows — see `cluster::node` for the three
/// implementations and the module docs above for the contract.
pub trait EventSource {
    /// Absolute timestamp (ns) of this source's next observable event,
    /// or `None` once the source is exhausted. `now_ns` is the
    /// scheduler's current global time (0 before the first event);
    /// sources that carry their own clock — every source in this crate
    /// does — may answer from that clock instead.
    fn next_event_ns(&self, now_ns: u64) -> Option<u64>;

    /// Advance this source's state to `to_ns` (a timestamp previously
    /// returned by [`EventSource::next_event_ns`]), performing exactly
    /// the work the per-quantum reference would have performed over
    /// the same span.
    fn advance(&mut self, to_ns: u64);
}

/// Drive `sources` to exhaustion from one global min-heap.
///
/// Each round pops the earliest `(timestamp, index)` pair, advances
/// that source to the timestamp, and re-queries it. Ties resolve by
/// source index, so the schedule is fully deterministic — and because
/// sources are independent (contract rule 3), the tie order cannot
/// change any numbers, only the interleaving.
pub fn run_event_loop(sources: &mut [&mut dyn EventSource]) {
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::with_capacity(sources.len());
    for (i, s) in sources.iter().enumerate() {
        if let Some(t) = s.next_event_ns(0) {
            heap.push(Reverse((t, i)));
        }
    }
    while let Some(Reverse((t, i))) = heap.pop() {
        sources[i].advance(t);
        if let Some(next) = sources[i].next_event_ns(t) {
            debug_assert!(next > t, "event source {i} must make progress past {t}");
            heap.push(Reverse((next, i)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ticks at a fixed stride until a deadline, recording every
    /// advance into a shared trace.
    struct Metronome<'a> {
        now: u64,
        stride: u64,
        end: u64,
        id: usize,
        trace: &'a std::cell::RefCell<Vec<(usize, u64)>>,
    }

    impl EventSource for Metronome<'_> {
        fn next_event_ns(&self, _now: u64) -> Option<u64> {
            (self.now < self.end).then(|| (self.now + self.stride).min(self.end))
        }
        fn advance(&mut self, to_ns: u64) {
            assert!(to_ns > self.now, "scheduler must move us forward");
            self.now = to_ns;
            self.trace.borrow_mut().push((self.id, to_ns));
        }
    }

    #[test]
    fn heap_drives_sources_in_global_timestamp_order() {
        let trace = std::cell::RefCell::new(Vec::new());
        let mut a = Metronome {
            now: 0,
            stride: 3,
            end: 9,
            id: 0,
            trace: &trace,
        };
        let mut b = Metronome {
            now: 0,
            stride: 5,
            end: 10,
            id: 1,
            trace: &trace,
        };
        run_event_loop(&mut [&mut a, &mut b]);
        assert_eq!((a.now, b.now), (9, 10));
        // Timestamps are globally non-decreasing; ties break by index.
        assert_eq!(
            trace.into_inner(),
            vec![(0, 3), (1, 5), (0, 6), (0, 9), (1, 10)]
        );
    }

    #[test]
    fn exhausted_sources_leave_the_heap() {
        let trace = std::cell::RefCell::new(Vec::new());
        let mut only = Metronome {
            now: 4,
            stride: 2,
            end: 4,
            id: 7,
            trace: &trace,
        };
        run_event_loop(&mut [&mut only]);
        assert!(trace.into_inner().is_empty(), "a spent source never fires");
    }

    #[test]
    fn stepping_mode_default_and_wire_names() {
        assert_eq!(SteppingMode::default(), SteppingMode::EventDriven);
        for mode in [SteppingMode::Lockstep, SteppingMode::EventDriven] {
            assert_eq!(SteppingMode::parse(mode.as_str()), Ok(mode));
        }
        assert!(SteppingMode::parse("cycle-accurate").is_err());
    }
}
